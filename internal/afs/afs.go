// Package afs models an AFS-style distributed file system (§4.7.3):
// volumes located via a volume location database, per-volume file
// servers, open-to-close semantics and — its distinguishing feature — a
// persistent client cache kept consistent with server callbacks. Cached
// attribute reads are purely local until the server breaks the callback,
// and dropping the OS caches does not empty the AFS cache (it lives on
// the client's disk), which the thesis points out when comparing
// StatNocacheFiles across file systems.
package afs

import (
	"fmt"
	"path"
	"strings"
	"time"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/namespace"
	"dmetabench/internal/sim"
	"dmetabench/internal/simnet"
)

// Config holds the tunables of the AFS model.
type Config struct {
	ServersThreads int
	OneWayLatency  time.Duration

	CreateService  time.Duration
	FetchService   time.Duration // FetchStatus
	RemoveService  time.Duration
	MkdirService   time.Duration
	RenameService  time.Duration
	ReaddirService time.Duration

	// CallbackBreakCost is charged at the server per remote cache entry
	// invalidated by a modification.
	CallbackBreakCost time.Duration
	DirIndex          namespace.DirIndex
}

// DefaultConfig approximates the LRZ AFS cell: metadata operations are
// noticeably slower than NFS (AFS was retired partly for this), cached
// reads are very fast.
func DefaultConfig() Config {
	return Config{
		ServersThreads:    2,
		OneWayLatency:     300 * time.Microsecond,
		CreateService:     650 * time.Microsecond,
		FetchService:      120 * time.Microsecond,
		RemoveService:     600 * time.Microsecond,
		MkdirService:      700 * time.Microsecond,
		RenameService:     750 * time.Microsecond,
		ReaddirService:    200 * time.Microsecond,
		CallbackBreakCost: 40 * time.Microsecond,
		DirIndex:          namespace.IndexLinear,
	}
}

// FS is one AFS cell.
type FS struct {
	k   *sim.Kernel
	cfg Config

	servers []*simnet.Server
	volumes map[string]*volume
	conns   map[connKey]*simnet.Conn
	nodes   map[*cluster.Node]*nodeCache
	rpcs    int64
}

type connKey struct {
	node *cluster.Node
	srv  int
}

type volume struct {
	name   string
	server int
	ns     *namespace.Namespace
	locks  map[fs.Ino]*sim.Mutex
	// version increments on every modification of a path, breaking
	// callbacks held by client caches.
	version map[string]int64
}

// nodeCache is the persistent AFS client cache of one node.
type nodeCache struct {
	attrs map[string]cachedAttr
	hits  int64
	miss  int64
}

type cachedAttr struct {
	attr    fs.Attr
	version int64
}

// New creates an AFS cell with the given number of file servers.
func New(k *sim.Kernel, name string, servers int, cfg Config) *FS {
	f := &FS{
		k:       k,
		cfg:     cfg,
		volumes: make(map[string]*volume),
		conns:   make(map[connKey]*simnet.Conn),
		nodes:   make(map[*cluster.Node]*nodeCache),
	}
	for i := 0; i < servers; i++ {
		f.servers = append(f.servers,
			simnet.NewServer(k, fmt.Sprintf("afs%d:%s", i, name), cfg.ServersThreads))
	}
	return f
}

// Name identifies the model.
func (f *FS) Name() string { return "afs" }

// AddVolume creates a volume served by server (round-robin when -1) and
// mounts it as the top-level directory /name.
func (f *FS) AddVolume(name string, server int) *volume {
	if server < 0 {
		server = len(f.volumes) % len(f.servers)
	}
	v := &volume{
		name:    name,
		server:  server,
		ns:      namespace.New(),
		locks:   make(map[fs.Ino]*sim.Mutex),
		version: make(map[string]int64),
	}
	f.volumes[name] = v
	return v
}

// NumVolumes returns the number of mounted volumes.
func (f *FS) NumVolumes() int { return len(f.volumes) }

// RPCCount returns the number of server RPCs.
func (f *FS) RPCCount() int64 { return f.rpcs }

// CacheStats sums cache hits and misses over all nodes.
func (f *FS) CacheStats() (hits, misses int64) {
	for _, nc := range f.nodes {
		hits += nc.hits
		misses += nc.miss
	}
	return
}

// resolve splits an absolute path into volume and in-volume path.
func (f *FS) resolve(op, p string) (*volume, string, error) {
	trimmed := strings.TrimPrefix(path.Clean(p), "/")
	if trimmed == "" || trimmed == "." {
		return nil, "", fs.NewError(op, p, fs.EINVAL)
	}
	comps := strings.SplitN(trimmed, "/", 2)
	v, ok := f.volumes[comps[0]]
	if !ok {
		return nil, "", fs.NewError(op, p, fs.ENOENT)
	}
	sub := "/"
	if len(comps) == 2 {
		sub = "/" + comps[1]
	}
	return v, sub, nil
}

func (f *FS) conn(n *cluster.Node, srv int) *simnet.Conn {
	key := connKey{n, srv}
	c, ok := f.conns[key]
	if !ok {
		c = simnet.NewConn(f.k, f.servers[srv], f.cfg.OneWayLatency, 0)
		f.conns[key] = c
	}
	return c
}

func (f *FS) cache(n *cluster.Node) *nodeCache {
	nc, ok := f.nodes[n]
	if !ok {
		nc = &nodeCache{attrs: make(map[string]cachedAttr)}
		f.nodes[n] = nc
	}
	return nc
}

func (v *volume) dirLock(k *sim.Kernel, ino fs.Ino) *sim.Mutex {
	m, ok := v.locks[ino]
	if !ok {
		m = sim.NewMutex(k, fmt.Sprintf("afsdir:%s:%d", v.name, ino))
		v.locks[ino] = m
	}
	return m
}

// bump invalidates client callbacks on a path after modification.
func (v *volume) bump(sp *sim.Proc, cost time.Duration, paths ...string) {
	for _, p := range paths {
		v.version[p]++
	}
	sp.Sleep(cost)
}

// NewClient binds a client for one process on one node.
func (f *FS) NewClient(node *cluster.Node, p *sim.Proc) fs.Client {
	return &client{fsys: f, node: node, p: p, handles: make(map[fs.Handle]*openFile)}
}

type openFile struct {
	path    string
	written int64
	dirty   bool
}

type client struct {
	fsys    *FS
	node    *cluster.Node
	p       *sim.Proc
	nextFH  fs.Handle
	handles map[fs.Handle]*openFile
}

// modify runs one namespace-changing RPC against the volume server.
func (c *client) modify(op, p string, svc time.Duration, apply func(sp *sim.Proc, v *volume, sub string) error) error {
	f := c.fsys
	c.node.Syscall(c.p)
	v, sub, err := f.resolve(op, p)
	if err != nil {
		return err
	}
	imutex := c.node.DirLock(fs.ParentDir(p))
	imutex.Lock(c.p)
	defer imutex.Unlock()
	f.conn(c.node, v.server).Call(c.p, 200, 160, func(sp *sim.Proc) {
		if dir, lerr := v.ns.Lookup(fs.ParentDir(sub)); lerr == nil {
			lock := v.dirLock(f.k, dir.Ino)
			lock.Lock(sp)
			defer lock.Unlock()
			sp.Sleep(time.Duration(float64(svc) * f.cfg.DirIndex.EntryCost(dir.NumChildren())))
		} else {
			sp.Sleep(svc)
		}
		f.rpcs++
		err = apply(sp, v, sub)
	})
	return err
}

// Create stores the new file on the volume server (open-to-close: the
// server sees it immediately) and installs a callback-backed cache entry.
func (c *client) Create(p string) error {
	err := c.modify("create", p, c.fsys.cfg.CreateService, func(sp *sim.Proc, v *volume, sub string) error {
		if _, e := v.ns.Create(sub, 0o644, sp.Now()); e != nil {
			return e
		}
		v.bump(sp, c.fsys.cfg.CallbackBreakCost, sub)
		return nil
	})
	if err != nil {
		return err
	}
	v, sub, _ := c.fsys.resolve("create", p)
	if a, e := v.ns.Stat(sub); e == nil {
		c.fsys.cache(c.node).attrs[p] = cachedAttr{attr: a, version: v.version[sub]}
	}
	return nil
}

// Open fetches status (or uses the callback-valid cache) and returns a
// handle.
func (c *client) Open(p string) (fs.Handle, error) {
	if _, err := c.Stat(p); err != nil {
		return 0, err
	}
	c.nextFH++
	c.handles[c.nextFH] = &openFile{path: p}
	return c.nextFH, nil
}

// Close implements open-to-close semantics: dirty data is stored back to
// the volume server before close returns.
func (c *client) Close(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	delete(c.handles, h)
	if !of.dirty {
		return nil
	}
	return c.modify("store", of.path, c.fsys.cfg.CreateService/2, func(sp *sim.Proc, v *volume, sub string) error {
		node, err := v.ns.Lookup(sub)
		if err != nil {
			return err
		}
		sp.Sleep(time.Duration(float64(of.written) / float64(40<<20) * float64(time.Second)))
		v.ns.SetSize(node.Ino, node.Size+of.written, sp.Now())
		v.bump(sp, c.fsys.cfg.CallbackBreakCost, sub)
		return nil
	})
}

// Write buffers into the local AFS cache until close.
func (c *client) Write(h fs.Handle, n int64) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	of.written += n
	of.dirty = true
	return nil
}

// Fsync stores dirty data like close but keeps the handle.
func (c *client) Fsync(h fs.Handle) error {
	c.node.Syscall(c.p)
	of, ok := c.handles[h]
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	if !of.dirty {
		return nil
	}
	of.dirty = false
	return c.modify("store", of.path, c.fsys.cfg.CreateService/2, func(sp *sim.Proc, v *volume, sub string) error {
		node, err := v.ns.Lookup(sub)
		if err != nil {
			return err
		}
		v.ns.SetSize(node.Ino, node.Size+of.written, sp.Now())
		v.bump(sp, c.fsys.cfg.CallbackBreakCost, sub)
		return nil
	})
}

// Mkdir creates a directory on the volume server.
func (c *client) Mkdir(p string) error {
	return c.modify("mkdir", p, c.fsys.cfg.MkdirService, func(sp *sim.Proc, v *volume, sub string) error {
		_, e := v.ns.Mkdir(sub, 0o755, sp.Now())
		return e
	})
}

// Rmdir removes a directory.
func (c *client) Rmdir(p string) error {
	return c.modify("rmdir", p, c.fsys.cfg.RemoveService, func(sp *sim.Proc, v *volume, sub string) error {
		return v.ns.Rmdir(sub, sp.Now())
	})
}

// Unlink removes a file and breaks callbacks.
func (c *client) Unlink(p string) error {
	err := c.modify("unlink", p, c.fsys.cfg.RemoveService, func(sp *sim.Proc, v *volume, sub string) error {
		if e := v.ns.Unlink(sub, sp.Now()); e != nil {
			return e
		}
		v.bump(sp, c.fsys.cfg.CallbackBreakCost, sub)
		return nil
	})
	if err == nil {
		delete(c.fsys.cache(c.node).attrs, p)
	}
	return err
}

// Rename moves within one volume; cross-volume renames fail with EXDEV
// exactly like the sub-namespace case discussed in §2.6.3.
func (c *client) Rename(oldPath, newPath string) error {
	f := c.fsys
	vOld, subOld, err := f.resolve("rename", oldPath)
	if err != nil {
		return err
	}
	vNew, subNew, err := f.resolve("rename", newPath)
	if err != nil {
		return err
	}
	if vOld != vNew {
		return fs.NewError("rename", newPath, fs.EXDEV)
	}
	return c.modify("rename", oldPath, f.cfg.RenameService, func(sp *sim.Proc, v *volume, _ string) error {
		if e := v.ns.Rename(subOld, subNew, sp.Now()); e != nil {
			return e
		}
		v.bump(sp, f.cfg.CallbackBreakCost, subOld, subNew)
		return nil
	})
}

// Link creates a hardlink within one volume.
func (c *client) Link(oldPath, newPath string) error {
	f := c.fsys
	vOld, subOld, err := f.resolve("link", oldPath)
	if err != nil {
		return err
	}
	vNew, subNew, err := f.resolve("link", newPath)
	if err != nil {
		return err
	}
	if vOld != vNew {
		return fs.NewError("link", newPath, fs.EXDEV)
	}
	return c.modify("link", newPath, f.cfg.CreateService, func(sp *sim.Proc, v *volume, _ string) error {
		return v.ns.Link(subOld, subNew, sp.Now())
	})
}

// Symlink creates a symbolic link on the volume server. Unlike hardlinks
// the target is a free-form path, so no EXDEV applies.
func (c *client) Symlink(target, linkPath string) error {
	return c.modify("symlink", linkPath, c.fsys.cfg.CreateService, func(sp *sim.Proc, v *volume, sub string) error {
		_, e := v.ns.Symlink(target, sub, sp.Now())
		return e
	})
}

// Stat serves from the persistent cache while the callback is intact;
// otherwise it fetches status from the volume server.
func (c *client) Stat(p string) (fs.Attr, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	v, sub, err := f.resolve("stat", p)
	if err != nil {
		return fs.Attr{}, err
	}
	nc := f.cache(c.node)
	if e, ok := nc.attrs[p]; ok && e.version == v.version[sub] {
		nc.hits++
		return e.attr, nil
	}
	nc.miss++
	var a fs.Attr
	f.conn(c.node, v.server).Call(c.p, 150, 170, func(sp *sim.Proc) {
		sp.Sleep(f.cfg.FetchService)
		f.rpcs++
		a, err = v.ns.Stat(sub)
	})
	if err != nil {
		return fs.Attr{}, err
	}
	nc.attrs[p] = cachedAttr{attr: a, version: v.version[sub]}
	return a, nil
}

// ReadDir fetches the directory from the volume server.
func (c *client) ReadDir(p string) ([]fs.DirEntry, error) {
	f := c.fsys
	c.node.Syscall(c.p)
	v, sub, err := f.resolve("readdir", p)
	if err != nil {
		return nil, err
	}
	var ents []fs.DirEntry
	f.conn(c.node, v.server).Call(c.p, 150, 400, func(sp *sim.Proc) {
		ents, err = v.ns.ReadDir(sub, sp.Now())
		sp.Sleep(f.cfg.ReaddirService + time.Duration(len(ents))*time.Microsecond)
		f.rpcs++
	})
	return ents, err
}

// DropCaches is a no-op: the AFS cache is persistent on the client's
// local disk and survives the Linux drop_caches mechanism.
func (c *client) DropCaches() {
	c.node.Syscall(c.p)
}
