package afs

import (
	"testing"

	"dmetabench/internal/cluster"
	"dmetabench/internal/fs"
	"dmetabench/internal/sim"
)

func env(t *testing.T) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.New(1)
	cl := cluster.New(k, cluster.DefaultConfig(2))
	cell := New(k, "cell", 2, DefaultConfig())
	cell.AddVolume("home", -1)
	cell.AddVolume("proj", -1)
	return k, cl, cell
}

func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeResolution(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		c := cell.NewClient(cl.Nodes[0], p)
		if err := c.Create("/home/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		if err := c.Create("/nosuchvol/f"); fs.CodeOf(err) != fs.ENOENT {
			t.Errorf("create in unknown volume: %v", err)
		}
		if _, err := c.Stat("/home/f"); err != nil {
			t.Errorf("stat: %v", err)
		}
		if err := c.Mkdir("/proj/sub"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
	})
	if cell.NumVolumes() != 2 {
		t.Fatalf("volumes = %d", cell.NumVolumes())
	}
}

func TestCrossVolumeRenameEXDEV(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		c := cell.NewClient(cl.Nodes[0], p)
		c.Create("/home/f")
		if err := c.Rename("/home/f", "/proj/f"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("cross-volume rename: %v, want EXDEV", err)
		}
		if err := c.Rename("/home/f", "/home/g"); err != nil {
			t.Errorf("same-volume rename: %v", err)
		}
		if err := c.Link("/home/g", "/proj/l"); fs.CodeOf(err) != fs.EXDEV {
			t.Errorf("cross-volume link: %v, want EXDEV", err)
		}
	})
}

func TestPersistentCacheSurvivesDrop(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		c := cell.NewClient(cl.Nodes[0], p)
		c.Create("/home/f")
		before := cell.RPCCount()
		for i := 0; i < 5; i++ {
			if _, err := c.Stat("/home/f"); err != nil {
				t.Fatalf("stat: %v", err)
			}
		}
		if cell.RPCCount() != before {
			t.Errorf("cached stats issued RPCs")
		}
		// drop_caches does not touch the persistent AFS cache.
		c.DropCaches()
		if _, err := c.Stat("/home/f"); err != nil {
			t.Fatalf("stat: %v", err)
		}
		if cell.RPCCount() != before {
			t.Errorf("stat after drop_caches issued an RPC — AFS cache should persist")
		}
	})
}

func TestCallbackBreakOnRemoteModification(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		a := cell.NewClient(cl.Nodes[0], p)
		b := cell.NewClient(cl.Nodes[1], p)
		a.Create("/home/f")
		// Node B caches the attributes.
		if _, err := b.Stat("/home/f"); err != nil {
			t.Fatalf("stat: %v", err)
		}
		// Node A writes: open-to-close semantics store on close and
		// break B's callback.
		h, err := a.Open("/home/f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		a.Write(h, 1000)
		if err := a.Close(h); err != nil {
			t.Fatalf("close: %v", err)
		}
		attr, err := b.Stat("/home/f")
		if err != nil {
			t.Fatalf("stat after write: %v", err)
		}
		if attr.Size != 1000 {
			t.Errorf("node B sees stale size %d after callback break", attr.Size)
		}
	})
}

func TestCacheStats(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		c := cell.NewClient(cl.Nodes[0], p)
		c.Create("/home/f")
		for i := 0; i < 9; i++ {
			c.Stat("/home/f")
		}
	})
	hits, misses := cell.CacheStats()
	if hits < 9 {
		t.Errorf("hits = %d, want >= 9", hits)
	}
	if misses != 0 {
		t.Errorf("misses = %d (create should prime the cache)", misses)
	}
}

func TestReadDirAndCleanupOps(t *testing.T) {
	k, cl, cell := env(t)
	run(t, k, func(p *sim.Proc) {
		c := cell.NewClient(cl.Nodes[0], p)
		c.Mkdir("/home/d")
		for i := 0; i < 5; i++ {
			c.Create("/home/d/f" + string(rune('0'+i)))
		}
		ents, err := c.ReadDir("/home/d")
		if err != nil || len(ents) != 5 {
			t.Fatalf("readdir: %v, %d", err, len(ents))
		}
		for _, e := range ents {
			if err := c.Unlink("/home/d/" + e.Name); err != nil {
				t.Fatalf("unlink: %v", err)
			}
		}
		if err := c.Rmdir("/home/d"); err != nil {
			t.Fatalf("rmdir: %v", err)
		}
	})
}
