package realrun

import (
	"fmt"
	"sync"
	"time"

	"dmetabench/internal/core"
	"dmetabench/internal/results"
)

// Runner executes plugins with real worker goroutines against a real file
// system (intra-node mode). Nodes is always 1; Workers maps to the
// processes-per-node dimension.
type Runner struct {
	// Root is the directory the virtual namespace is rooted at.
	Root string
	// Workers is the number of concurrent benchmark processes.
	Workers int
	Params  core.Params
	Plugins []core.Plugin
	// Hostname labels the traces; defaults to "localhost".
	Hostname string
}

// Run executes every plugin once at the configured concurrency.
func (r *Runner) Run() (*results.Set, error) {
	if r.Workers < 1 {
		r.Workers = 1
	}
	host := r.Hostname
	if host == "" {
		host = "localhost"
	}
	interval := r.Params.Interval
	if interval <= 0 {
		interval = core.DefaultInterval
	}
	set := results.NewSet(r.Params.Label, "os:"+r.Root, interval)
	for _, plugin := range r.Plugins {
		m, err := r.runOne(plugin, host, interval)
		if err != nil {
			return nil, err
		}
		set.Add(m)
	}
	return set, nil
}

func (r *Runner) runOne(plugin core.Plugin, host string, interval time.Duration) (*results.Measurement, error) {
	n := r.Workers
	ctxs := make([]*core.Ctx, n)
	errs := make([]string, n)
	finished := make([]time.Duration, n)
	doneFlags := make([]bool, n)
	var mu sync.Mutex

	for rank := 0; rank < n; rank++ {
		dir := fmt.Sprintf("%s/%s-p%d/p%03d", r.Params.WorkDir, plugin.Name(), n, rank)
		if len(r.Params.PathList) > 0 {
			dir = fmt.Sprintf("%s/p%03d", r.Params.PathList[rank%len(r.Params.PathList)], rank)
		}
		peer := fmt.Sprintf("%s/%s-p%d/p%03d", r.Params.WorkDir, plugin.Name(), n, (rank+1)%n)
		ctxs[rank] = &core.Ctx{
			FS:      NewOSClient(r.Root),
			Rank:    rank,
			Workers: n,
			Node:    host,
			Dir:     dir,
			PeerDir: peer,
			Params:  r.Params,
		}
	}

	phase := func(name string, fn func(c *core.Ctx) error) {
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			rank := rank
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				ctxs[rank].Now = func() time.Duration { return time.Since(start) }
				if errs[rank] != "" && name != "cleanup" {
					return
				}
				if err := fn(ctxs[rank]); err != nil {
					mu.Lock()
					if errs[rank] == "" {
						errs[rank] = fmt.Sprintf("%s: %v", name, err)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	phase("prepare", plugin.Prepare)

	// doBench with the interval supervisor.
	traces := make([][]int64, n)
	benchStart := time.Now()
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		rank := rank
		ctxs[rank].Now = func() time.Duration { return time.Since(benchStart) }
		ctxs[rank].Deadline = r.Params.TimeLimit
		wg.Add(1)
		go func() {
			defer wg.Done()
			if errs[rank] != "" {
				mu.Lock()
				doneFlags[rank] = true
				mu.Unlock()
				return
			}
			if err := plugin.DoBench(ctxs[rank]); err != nil {
				mu.Lock()
				errs[rank] = fmt.Sprintf("dobench: %v", err)
				mu.Unlock()
			}
			mu.Lock()
			finished[rank] = time.Since(benchStart)
			doneFlags[rank] = true
			mu.Unlock()
		}()
	}
	ticker := time.NewTicker(interval)
	for {
		<-ticker.C
		mu.Lock()
		all := true
		for i := range ctxs {
			traces[i] = append(traces[i], ctxs[i].Progress())
			if !doneFlags[i] {
				all = false
			}
		}
		mu.Unlock()
		if all {
			break
		}
	}
	ticker.Stop()
	wg.Wait()

	phase("cleanup", plugin.Cleanup)

	m := &results.Measurement{
		Op: plugin.Name(), Nodes: 1, PPN: n, Interval: interval, Errors: errs,
	}
	for rank := 0; rank < n; rank++ {
		m.Traces = append(m.Traces, results.Trace{
			Host: host, Op: plugin.Name(), Proc: rank,
			Done:       traces[rank],
			Final:      ctxs[rank].Progress(),
			FinishedAt: finished[rank],
		})
	}
	return m, nil
}
