// Package realrun executes DMetabench plugins against real file systems
// in real time: in-process worker goroutines for intra-node parallelism
// and a net/rpc master/worker protocol for multi-node runs. It reuses the
// plugin, parameter and result machinery of internal/core, so simulated
// and real measurements produce identical result sets.
package realrun

import (
	"io"
	iofs "io/fs"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dmetabench/internal/fs"
)

// OSClient adapts a directory of the host file system to the benchmark's
// metadata API. All virtual paths are resolved under Root; attempts to
// escape the root are clamped to it.
type OSClient struct {
	Root string

	mu      sync.Mutex
	nextFH  fs.Handle
	handles map[fs.Handle]*os.File
}

// NewOSClient returns a client rooted at root.
func NewOSClient(root string) *OSClient {
	return &OSClient{Root: root, handles: make(map[fs.Handle]*os.File)}
}

// realPath maps a virtual absolute path into the root directory.
func (c *OSClient) realPath(p string) string {
	clean := path.Clean("/" + strings.TrimPrefix(p, "/"))
	return filepath.Join(c.Root, filepath.FromSlash(clean))
}

// mapErr converts an os error into the benchmark error model.
func mapErr(op, p string, err error) error {
	if err == nil {
		return nil
	}
	// Inspect the specific errno text first: os.IsExist also matches
	// ENOTEMPTY, which must stay distinguishable for rmdir semantics.
	var pe *iofs.PathError
	if ok := asPathError(err, &pe); ok {
		msg := pe.Err.Error()
		switch {
		case strings.Contains(msg, "not a directory"):
			return fs.NewError(op, p, fs.ENOTDIR)
		case strings.Contains(msg, "is a directory"):
			return fs.NewError(op, p, fs.EISDIR)
		case strings.Contains(msg, "not empty"):
			return fs.NewError(op, p, fs.ENOTEMPTY)
		case strings.Contains(msg, "cross-device"):
			return fs.NewError(op, p, fs.EXDEV)
		}
	}
	switch {
	case os.IsExist(err):
		return fs.NewError(op, p, fs.EEXIST)
	case os.IsNotExist(err):
		return fs.NewError(op, p, fs.ENOENT)
	case os.IsPermission(err):
		return fs.NewError(op, p, fs.EACCES)
	}
	return fs.NewError(op, p, fs.EINVAL)
}

func asPathError(err error, target **iofs.PathError) bool {
	for err != nil {
		if pe, ok := err.(*iofs.PathError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Create makes an empty file (open O_CREAT|O_EXCL + close).
func (c *OSClient) Create(p string) error {
	f, err := os.OpenFile(c.realPath(p), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return mapErr("create", p, err)
	}
	return f.Close()
}

// Open opens an existing file for read/write.
func (c *OSClient) Open(p string) (fs.Handle, error) {
	f, err := os.OpenFile(c.realPath(p), os.O_RDWR, 0)
	if err != nil {
		return 0, mapErr("open", p, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextFH++
	c.handles[c.nextFH] = f
	return c.nextFH, nil
}

func (c *OSClient) file(h fs.Handle) (*os.File, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.handles[h]
	return f, ok
}

// Close closes the handle.
func (c *OSClient) Close(h fs.Handle) error {
	c.mu.Lock()
	f, ok := c.handles[h]
	delete(c.handles, h)
	c.mu.Unlock()
	if !ok {
		return fs.NewError("close", "", fs.EBADF)
	}
	return f.Close()
}

// Write appends n zero bytes.
func (c *OSClient) Write(h fs.Handle, n int64) error {
	f, ok := c.file(h)
	if !ok {
		return fs.NewError("write", "", fs.EBADF)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return mapErr("write", f.Name(), err)
	}
	buf := make([]byte, 32<<10)
	for n > 0 {
		chunk := int64(len(buf))
		if n < chunk {
			chunk = n
		}
		if _, err := f.Write(buf[:chunk]); err != nil {
			return mapErr("write", f.Name(), err)
		}
		n -= chunk
	}
	return nil
}

// Fsync flushes the file to stable storage.
func (c *OSClient) Fsync(h fs.Handle) error {
	f, ok := c.file(h)
	if !ok {
		return fs.NewError("fsync", "", fs.EBADF)
	}
	return mapErr("fsync", f.Name(), f.Sync())
}

// Mkdir creates a directory.
func (c *OSClient) Mkdir(p string) error {
	return mapErr("mkdir", p, os.Mkdir(c.realPath(p), 0o755))
}

// Rmdir removes an empty directory.
func (c *OSClient) Rmdir(p string) error {
	info, err := os.Lstat(c.realPath(p))
	if err != nil {
		return mapErr("rmdir", p, err)
	}
	if !info.IsDir() {
		return fs.NewError("rmdir", p, fs.ENOTDIR)
	}
	return mapErr("rmdir", p, os.Remove(c.realPath(p)))
}

// Unlink removes a file.
func (c *OSClient) Unlink(p string) error {
	info, err := os.Lstat(c.realPath(p))
	if err != nil {
		return mapErr("unlink", p, err)
	}
	if info.IsDir() {
		return fs.NewError("unlink", p, fs.EISDIR)
	}
	return mapErr("unlink", p, os.Remove(c.realPath(p)))
}

// Rename moves a file or directory.
func (c *OSClient) Rename(oldPath, newPath string) error {
	return mapErr("rename", oldPath, os.Rename(c.realPath(oldPath), c.realPath(newPath)))
}

// Link creates a hardlink.
func (c *OSClient) Link(oldPath, newPath string) error {
	return mapErr("link", newPath, os.Link(c.realPath(oldPath), c.realPath(newPath)))
}

// Symlink creates a symbolic link. The target is stored verbatim (it is
// interpreted relative to the link's directory by the OS).
func (c *OSClient) Symlink(target, linkPath string) error {
	return mapErr("symlink", linkPath, os.Symlink(target, c.realPath(linkPath)))
}

// Stat reads attributes.
func (c *OSClient) Stat(p string) (fs.Attr, error) {
	info, err := os.Lstat(c.realPath(p))
	if err != nil {
		return fs.Attr{}, mapErr("stat", p, err)
	}
	a := fs.Attr{
		Size:  info.Size(),
		Mode:  uint32(info.Mode().Perm()),
		Mtime: time.Duration(info.ModTime().UnixNano()),
		Nlink: 1,
	}
	switch {
	case info.IsDir():
		a.Type = fs.TypeDirectory
	case info.Mode()&os.ModeSymlink != 0:
		a.Type = fs.TypeSymlink
	default:
		a.Type = fs.TypeRegular
	}
	return a, nil
}

// ReadDir lists a directory.
func (c *OSClient) ReadDir(p string) ([]fs.DirEntry, error) {
	ents, err := os.ReadDir(c.realPath(p))
	if err != nil {
		return nil, mapErr("readdir", p, err)
	}
	out := make([]fs.DirEntry, 0, len(ents))
	for _, e := range ents {
		t := fs.TypeRegular
		if e.IsDir() {
			t = fs.TypeDirectory
		} else if e.Type()&os.ModeSymlink != 0 {
			t = fs.TypeSymlink
		}
		out = append(out, fs.DirEntry{Name: e.Name(), Type: t})
	}
	return out, nil
}

// DropCaches attempts the Linux drop_caches mechanism; without the needed
// privileges it is a no-op, exactly like running the original benchmark
// without its suid wrapper (§3.4.3).
func (c *OSClient) DropCaches() {
	if f, err := os.OpenFile("/proc/sys/vm/drop_caches", os.O_WRONLY, 0); err == nil {
		f.Write([]byte("3\n"))
		f.Close()
	}
}
