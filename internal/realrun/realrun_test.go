package realrun

import (
	"net"
	"testing"
	"time"

	"dmetabench/internal/core"
	"dmetabench/internal/fs"
)

func TestOSClientBasics(t *testing.T) {
	c := NewOSClient(t.TempDir())
	if err := c.Mkdir("/d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := c.Create("/d/f"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := c.Create("/d/f"); fs.CodeOf(err) != fs.EEXIST {
		t.Fatalf("dup create: %v", err)
	}
	h, err := c.Open("/d/f")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := c.Write(h, 1234); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Fsync(h); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	if err := c.Close(h); err != nil {
		t.Fatalf("close: %v", err)
	}
	a, err := c.Stat("/d/f")
	if err != nil || a.Size != 1234 || a.Type != fs.TypeRegular {
		t.Fatalf("stat: %v %+v", err, a)
	}
	if err := c.Link("/d/f", "/d/g"); err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := c.Rename("/d/g", "/d/h"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	ents, err := c.ReadDir("/d")
	if err != nil || len(ents) != 2 {
		t.Fatalf("readdir: %v %v", err, ents)
	}
	if err := c.Rmdir("/d"); fs.CodeOf(err) != fs.ENOTEMPTY {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := c.Unlink("/d"); fs.CodeOf(err) != fs.EISDIR {
		t.Fatalf("unlink dir: %v", err)
	}
	c.Unlink("/d/f")
	c.Unlink("/d/h")
	if err := c.Rmdir("/d"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	if _, err := c.Stat("/d"); fs.CodeOf(err) != fs.ENOENT {
		t.Fatalf("stat removed: %v", err)
	}
}

func TestOSClientPathEscape(t *testing.T) {
	root := t.TempDir()
	c := NewOSClient(root)
	// Escaping paths are clamped into the root.
	if err := c.Create("/../../escaped"); err != nil {
		t.Fatalf("clamped create: %v", err)
	}
	if _, err := c.Stat("/escaped"); err != nil {
		t.Fatalf("clamped file not under root: %v", err)
	}
}

func TestRealRunnerLocal(t *testing.T) {
	r := &Runner{
		Root:    t.TempDir(),
		Workers: 3,
		Params: core.Params{
			ProblemSize: 300,
			WorkDir:     "/bench",
			Interval:    5 * time.Millisecond,
		},
		Plugins: []core.Plugin{core.MakeFiles{}, core.StatFiles{}},
	}
	set, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Measurements) != 2 {
		t.Fatalf("measurements = %d", len(set.Measurements))
	}
	for _, m := range set.Measurements {
		if m.Failed() {
			t.Fatalf("%s failed: %v", m.Op, m.Errors)
		}
		if m.TotalOps() != int64(300*3) {
			t.Fatalf("%s ops = %d", m.Op, m.TotalOps())
		}
		if a := m.Averages(); a.WallClock <= 0 {
			t.Fatalf("%s wallclock = %f", m.Op, a.WallClock)
		}
	}
}

func TestRPCMasterWorker(t *testing.T) {
	root := t.TempDir()
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
		go Serve(l, "worker")
	}
	m := &Master{
		Root:  root,
		Addrs: addrs,
		Params: core.Params{
			ProblemSize: 200,
			WorkDir:     "/bench",
			Interval:    5 * time.Millisecond,
		},
		Plugins: []core.Plugin{core.MakeFiles{}, core.DeleteFiles{}},
	}
	set, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, meas := range set.Measurements {
		if meas.Failed() {
			t.Fatalf("%s failed: %v", meas.Op, meas.Errors)
		}
		if meas.Nodes != 2 {
			t.Fatalf("nodes = %d", meas.Nodes)
		}
		if meas.TotalOps() != 400 {
			t.Fatalf("%s ops = %d", meas.Op, meas.TotalOps())
		}
	}
	// Workspace cleaned up by the cleanup phases.
	c := NewOSClient(root)
	ents, err := c.ReadDir("/bench")
	if err == nil {
		for _, e := range ents {
			sub, _ := c.ReadDir("/bench/" + e.Name)
			if len(sub) != 0 {
				t.Fatalf("leftover files under /bench/%s: %v", e.Name, sub)
			}
		}
	}
}
