package realrun

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"dmetabench/internal/core"
	"dmetabench/internal/results"
)

// The net/rpc master/worker protocol replaces MPI for distributed real
// runs: dmetaworker daemons register a Worker service, the master assigns
// every daemon a rank, drives the three phases, and polls the progress
// counters on the interval grid.

// SetupArgs configures a worker for one measurement.
type SetupArgs struct {
	Root    string
	Op      string
	Rank    int
	Workers int
	Dir     string
	PeerDir string
	Params  core.Params
}

// PhaseArgs starts one phase; the call returns when the phase finishes.
type PhaseArgs struct {
	Phase string // "prepare" | "dobench" | "cleanup"
}

// PhaseReply carries the phase outcome.
type PhaseReply struct {
	Err        string
	FinishedAt time.Duration // doBench only: time from phase start
	Final      int64
}

// ProgressReply carries the live progress counter.
type ProgressReply struct {
	Done int64
}

// Worker is the RPC service run by dmetaworker.
type Worker struct {
	Hostname string

	mu     sync.Mutex
	ctx    *core.Ctx
	plugin core.Plugin
}

// Setup prepares the worker state for one measurement.
func (w *Worker) Setup(args *SetupArgs, _ *struct{}) error {
	plugin, err := core.PluginByName(args.Op)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.plugin = plugin
	w.ctx = &core.Ctx{
		FS:      NewOSClient(args.Root),
		Rank:    args.Rank,
		Workers: args.Workers,
		Node:    w.Hostname,
		Dir:     args.Dir,
		PeerDir: args.PeerDir,
		Params:  args.Params,
	}
	return nil
}

// RunPhase executes one phase synchronously.
func (w *Worker) RunPhase(args *PhaseArgs, reply *PhaseReply) error {
	w.mu.Lock()
	ctx, plugin := w.ctx, w.plugin
	w.mu.Unlock()
	if ctx == nil {
		return fmt.Errorf("worker: RunPhase before Setup")
	}
	start := time.Now()
	ctx.Now = func() time.Duration { return time.Since(start) }
	var err error
	switch args.Phase {
	case "prepare":
		err = plugin.Prepare(ctx)
	case "dobench":
		ctx.Deadline = ctx.Params.TimeLimit
		err = plugin.DoBench(ctx)
		reply.FinishedAt = time.Since(start)
		reply.Final = ctx.Progress()
	case "cleanup":
		err = plugin.Cleanup(ctx)
	default:
		return fmt.Errorf("worker: unknown phase %q", args.Phase)
	}
	if err != nil {
		reply.Err = err.Error()
	}
	return nil
}

// Progress reports the current operation count.
func (w *Worker) Progress(_ *struct{}, reply *ProgressReply) error {
	w.mu.Lock()
	ctx := w.ctx
	w.mu.Unlock()
	if ctx != nil {
		reply.Done = ctx.Progress()
	}
	return nil
}

// Serve registers a Worker on the listener and serves until the listener
// closes.
func Serve(l net.Listener, hostname string) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &Worker{Hostname: hostname}); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Master coordinates a distributed real run over a set of worker
// addresses (one OS process per address).
type Master struct {
	Root    string
	Addrs   []string
	Params  core.Params
	Plugins []core.Plugin
}

// Run executes every plugin across all workers.
func (m *Master) Run() (*results.Set, error) {
	interval := m.Params.Interval
	if interval <= 0 {
		interval = core.DefaultInterval
	}
	clients := make([]*rpc.Client, len(m.Addrs))
	for i, addr := range m.Addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dial worker %s: %w", addr, err)
		}
		defer c.Close()
		clients[i] = c
	}
	set := results.NewSet(m.Params.Label, "os-cluster:"+m.Root, interval)
	for _, plugin := range m.Plugins {
		meas, err := m.runOne(clients, plugin, interval)
		if err != nil {
			return nil, err
		}
		set.Add(meas)
	}
	return set, nil
}

func (m *Master) runOne(clients []*rpc.Client, plugin core.Plugin, interval time.Duration) (*results.Measurement, error) {
	n := len(clients)
	dirs := make([]string, n)
	for rank := range clients {
		dirs[rank] = fmt.Sprintf("%s/%s-w%d/p%03d", m.Params.WorkDir, plugin.Name(), n, rank)
	}
	for rank, c := range clients {
		args := &SetupArgs{
			Root: m.Root, Op: plugin.Name(), Rank: rank, Workers: n,
			Dir: dirs[rank], PeerDir: dirs[(rank+1)%n], Params: m.Params,
		}
		if err := c.Call("Worker.Setup", args, &struct{}{}); err != nil {
			return nil, fmt.Errorf("setup rank %d: %w", rank, err)
		}
	}

	errs := make([]string, n)
	phase := func(name string) ([]PhaseReply, error) {
		replies := make([]PhaseReply, n)
		calls := make([]*rpc.Call, n)
		for rank, c := range clients {
			calls[rank] = c.Go("Worker.RunPhase", &PhaseArgs{Phase: name}, &replies[rank], nil)
		}
		for rank, call := range calls {
			<-call.Done
			if call.Error != nil {
				return nil, fmt.Errorf("%s rank %d: %w", name, rank, call.Error)
			}
			if replies[rank].Err != "" && errs[rank] == "" {
				errs[rank] = name + ": " + replies[rank].Err
			}
		}
		return replies, nil
	}

	if _, err := phase("prepare"); err != nil {
		return nil, err
	}

	// doBench: issue async calls, poll progress until they all return.
	replies := make([]PhaseReply, n)
	calls := make([]*rpc.Call, n)
	for rank, c := range clients {
		calls[rank] = c.Go("Worker.RunPhase", &PhaseArgs{Phase: "dobench"}, &replies[rank], nil)
	}
	allDone := make(chan struct{})
	var wg sync.WaitGroup
	for rank := range calls {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-calls[rank].Done
		}()
	}
	go func() {
		wg.Wait()
		close(allDone)
	}()
	traces := make([][]int64, n)
	ticker := time.NewTicker(interval)
sampling:
	for {
		select {
		case <-ticker.C:
			for rank, c := range clients {
				var pr ProgressReply
				if err := c.Call("Worker.Progress", &struct{}{}, &pr); err == nil {
					traces[rank] = append(traces[rank], pr.Done)
				}
			}
		case <-allDone:
			break sampling
		}
	}
	ticker.Stop()
	for rank := range clients {
		if calls[rank].Error != nil {
			return nil, fmt.Errorf("dobench rank %d: %w", rank, calls[rank].Error)
		}
		if replies[rank].Err != "" && errs[rank] == "" {
			errs[rank] = "dobench: " + replies[rank].Err
		}
	}

	if _, err := phase("cleanup"); err != nil {
		return nil, err
	}

	meas := &results.Measurement{
		Op: plugin.Name(), Nodes: n, PPN: 1, Interval: interval, Errors: errs,
	}
	for rank := range clients {
		done := traces[rank]
		if len(done) == 0 || done[len(done)-1] < replies[rank].Final {
			done = append(done, replies[rank].Final)
		}
		meas.Traces = append(meas.Traces, results.Trace{
			Host: m.Addrs[rank], Op: plugin.Name(), Proc: rank,
			Done:       done,
			Final:      replies[rank].Final,
			FinishedAt: replies[rank].FinishedAt,
		})
	}
	return meas, nil
}
