// Package simnet models the network paths of a distributed file system:
// propagation latency, bandwidth-limited transfer and server-side thread
// pools with FIFO queueing.
//
// The model is intentionally at RPC granularity — the thesis shows that
// metadata performance in distributed file systems is dominated by
// request/response latency and server queueing (§4.6), not by wire
// details, so a latency + bandwidth + thread-pool abstraction captures
// the relevant behaviour.
//
// Servers can be marked down and up again (SetDown/SetUp), the substrate
// hook the failure-injection experiments (E19–E21, internal/fault) drive:
// a Conn.TryCall against a down server burns the client-observed RPC
// timeout and returns ErrDown instead of executing its service body.
//
// Connections are direction-agnostic: a Server can just as well stand
// for a client node's callback endpoint, with the metadata servers
// holding Conns to it. The lease-coherence protocol (internal/shard
// coherence.go, E22–E24) uses exactly that for its server→client
// revocation and delegation-recall callbacks, with a per-node callback
// thread pool so coherence traffic cannot deadlock against the MDS
// client/peer pools.
package simnet

import (
	"errors"
	"time"

	"dmetabench/internal/sim"
)

// ErrDown is returned by TryCall when the server is down: the client's
// request received no reply within its timeout.
var ErrDown = errors.New("simnet: server down")

// DefaultFailTimeout is the client-observed RPC timeout charged by
// TryCall against a down server when the connection sets none.
const DefaultFailTimeout = 500 * time.Millisecond

// Server is an RPC service endpoint with a bounded worker thread pool.
// Requests queue in arrival order when all threads are busy.
type Server struct {
	Name    string
	Threads *sim.Resource

	k     *sim.Kernel
	down  bool
	downs int64
}

// NewServer returns a server with the given number of worker threads.
// The kernel is where the server's state lives: when it belongs to a
// domain group, RPCs from other domains run their service bodies in
// that domain via the cross-domain rendezvous.
func NewServer(k *sim.Kernel, name string, threads int) *Server {
	return &Server{Name: name, k: k, Threads: sim.NewResource(k, "srv:"+name, threads)}
}

// Kernel returns the kernel (and therefore the domain) the server's
// state lives on.
func (s *Server) Kernel() *sim.Kernel { return s.k }

// SetDown marks the server crashed: subsequent (and already queued)
// TryCall requests fail with ErrDown until SetUp. State changes take
// effect between operations — the simulator runs one process at a time,
// so a service body never observes the flag flipping mid-execution.
func (s *Server) SetDown() {
	if !s.down {
		s.down = true
		s.downs++
	}
}

// SetUp marks the server reachable again.
func (s *Server) SetUp() { s.down = false }

// IsDown reports whether the server is currently down.
func (s *Server) IsDown() bool { return s.down }

// Downs returns the number of times the server has gone down.
func (s *Server) Downs() int64 { return s.downs }

// Do runs service while holding one of the server's worker threads,
// without a network path: the execution-context half of Call. Servers
// that forward work to a peer service (clustered metadata servers) use
// it to charge the remote thread occupancy after paying the hop latency
// themselves.
func (s *Server) Do(p *sim.Proc, service func(p *sim.Proc)) {
	s.Threads.Acquire(p)
	service(p)
	s.Threads.Release()
}

// Conn is a client's path to a server: one-way latency plus a bandwidth
// limit shared by all users of the connection.
type Conn struct {
	srv *Server
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second; 0 means unlimited.
	Bandwidth int64
	// FailTimeout is the time a TryCall against a down server blocks
	// before reporting ErrDown (the client's RPC timeout). Zero means
	// DefaultFailTimeout.
	FailTimeout time.Duration
	// wire serializes transfers on this connection when bandwidth-limited.
	wire *sim.Resource
}

// NewConn returns a connection to srv with the given one-way latency and
// bandwidth (bytes/s, 0 = unlimited).
func NewConn(k *sim.Kernel, srv *Server, latency time.Duration, bandwidth int64) *Conn {
	c := &Conn{srv: srv, Latency: latency, Bandwidth: bandwidth}
	if bandwidth > 0 {
		c.wire = sim.NewResource(k, "wire:"+srv.Name, 1)
	}
	return c
}

// Server returns the connection's endpoint.
func (c *Conn) Server() *Server { return c.srv }

// transferTime returns the serialization delay for n bytes.
func (c *Conn) transferTime(n int64) time.Duration {
	if c.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(c.Bandwidth) * float64(time.Second))
}

// send models moving n bytes across the connection in one direction.
func (c *Conn) send(p *sim.Proc, n int64) {
	if c.wire != nil && n > 0 {
		c.wire.Use(p, c.transferTime(n))
	}
	p.Sleep(c.Latency)
}

// callCtx is the per-RPC context the cross-domain path threads through
// sim.Proc.Ctx: service bodies register reply work on it via Defer.
type callCtx struct {
	thunks []func()
}

// Defer registers fn as reply-time work for the RPC whose service body
// is running on p: state the protocol conceptually ships back to the
// client (cache fills, lease grants) must mutate client-side structures
// in the client's domain, not the server's. On the inline (same-kernel)
// path fn runs immediately — the legacy zero-copy semantics; on the
// cross-domain path it runs in the client's process right after the
// reply arrives, which is both deterministic and race-free (the client
// resumes only after a window barrier). Outside any RPC, fn runs
// immediately.
func Defer(p *sim.Proc, fn func()) {
	if cc, ok := p.Ctx.(*callCtx); ok && cc != nil {
		cc.thunks = append(cc.thunks, fn)
		return
	}
	fn()
}

// Deferred reports whether Defer(p, fn) would queue fn for reply
// delivery rather than run it inline — i.e. whether p is a cross-domain
// service body. Hot paths branch on it so the inline (single-kernel)
// case performs the work directly instead of allocating a closure that
// Defer would only call on the spot.
func Deferred(p *sim.Proc) bool {
	cc, ok := p.Ctx.(*callCtx)
	return ok && cc != nil
}

// cross reports whether an RPC from p to the server must rendezvous
// across domains.
func (c *Conn) cross(p *sim.Proc) bool {
	return c.srv.k != p.Kernel() && p.Kernel().Group() != nil &&
		p.Kernel().Group() == c.srv.k.Group()
}

// Call performs a synchronous RPC: request transfer and propagation,
// queueing for a server thread, the caller-supplied service body, then
// the reply path. service runs while holding a server thread; it charges
// whatever virtual time the operation costs at the server. The caller
// must share a kernel with the server — callers that may live in
// another domain of a DomainGroup use CallDom.
func (c *Conn) Call(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) {
	c.send(p, reqBytes)
	c.srv.Threads.Acquire(p)
	service(p)
	c.srv.Threads.Release()
	c.send(p, respBytes)
}

// CallDom is Call for callers that may run in a different kernel domain
// than the server (internal/shard under Config.Domains). When they do,
// the body executes in the server's domain (a fresh process created by
// the message delivery) while the caller blocks; the one-way latency is
// carried by the message timestamps instead of caller sleeps, and
// Defer'd reply work runs in the caller's domain after it resumes.
// Virtual-time cost is identical to the inline path.
//
// It is a separate method, not a branch inside Call, for an allocation
// reason: the cross-domain path stores service in a message, which
// makes the parameter escape — and Go decides escape per function, so
// folding the branch into Call would heap-allocate the service closure
// of every single-kernel RPC in every FS model. Callers that can never
// be domained use Call and keep their closures on the stack.
func (c *Conn) CallDom(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) {
	if c.cross(p) {
		c.callCross(p, reqBytes, respBytes, service)
		return
	}
	c.Call(p, reqBytes, respBytes, service)
}

// callCross is the cross-domain rendezvous half of Call.
func (c *Conn) callCross(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) {
	if c.wire != nil && reqBytes > 0 {
		c.wire.Use(p, c.transferTime(reqBytes))
	}
	cc := &callCtx{}
	saved := p.Ctx
	p.Ctx = cc
	srv := c.srv
	sim.Call(p, srv.k, c.Latency, "rpc:"+srv.Name, func(q *sim.Proc) {
		srv.Threads.Acquire(q)
		service(q)
		srv.Threads.Release()
	})
	p.Ctx = saved
	for _, fn := range cc.thunks {
		fn()
	}
	if c.wire != nil && respBytes > 0 {
		c.wire.Use(p, c.transferTime(respBytes))
	}
}

// failTimeout returns the effective client RPC timeout.
func (c *Conn) failTimeout() time.Duration {
	if c.FailTimeout > 0 {
		return c.FailTimeout
	}
	return DefaultFailTimeout
}

// TryCall is Call against a server that may be down. A request to a down
// server blocks for the connection's FailTimeout (the client waiting out
// its RPC timer) and returns ErrDown without running the service body; a
// request that was already queued for a worker thread when the server
// crashed fails the same way once dequeued. Fault-tolerant clients wrap
// TryCall in a retry loop with deterministic backoff (internal/shard).
func (c *Conn) TryCall(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) error {
	if c.srv.down {
		p.Sleep(c.failTimeout())
		return ErrDown
	}
	c.send(p, reqBytes)
	c.srv.Threads.Acquire(p)
	if c.srv.down {
		// The server crashed while this request sat in its queue: the
		// service never ran, the client times out like an unsent request.
		c.srv.Threads.Release()
		p.Sleep(c.failTimeout())
		return ErrDown
	}
	service(p)
	c.srv.Threads.Release()
	c.send(p, respBytes)
	return nil
}

// TryCallDom is TryCall for callers that may run in a different kernel
// domain than the server — split out of TryCall for the same
// closure-escape reason as CallDom.
func (c *Conn) TryCallDom(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) error {
	// The down flag is safe to read from any domain: under a domain
	// group it only flips at sync points, where every domain is parked
	// (the window barrier is the happens-before edge).
	if c.cross(p) {
		if c.srv.down {
			p.Sleep(c.failTimeout())
			return ErrDown
		}
		return c.tryCallCross(p, reqBytes, respBytes, service)
	}
	return c.TryCall(p, reqBytes, respBytes, service)
}

// tryCallCross is the cross-domain rendezvous half of TryCall. A crash
// landing while the request is queued is detected in the server's
// domain; the client then waits out its RPC timer after the (wasted)
// round trip.
func (c *Conn) tryCallCross(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) error {
	if c.wire != nil && reqBytes > 0 {
		c.wire.Use(p, c.transferTime(reqBytes))
	}
	cc := &callCtx{}
	saved := p.Ctx
	p.Ctx = cc
	srv := c.srv
	crashed := false
	sim.Call(p, srv.k, c.Latency, "rpc:"+srv.Name, func(q *sim.Proc) {
		srv.Threads.Acquire(q)
		if srv.down {
			srv.Threads.Release()
			crashed = true
			return
		}
		service(q)
		srv.Threads.Release()
	})
	p.Ctx = saved
	if crashed {
		p.Sleep(c.failTimeout())
		return ErrDown
	}
	for _, fn := range cc.thunks {
		fn()
	}
	if c.wire != nil && respBytes > 0 {
		c.wire.Use(p, c.transferTime(respBytes))
	}
	return nil
}

// OneWay models a fire-and-forget message (used for asynchronous
// write-back flushes): the sender pays the transfer cost and the service
// body runs in a spawned process after the propagation delay.
func (c *Conn) OneWay(p *sim.Proc, reqBytes int64, service func(p *sim.Proc)) {
	if c.wire != nil && reqBytes > 0 {
		c.wire.Use(p, c.transferTime(reqBytes))
	}
	lat := c.Latency
	srv := c.srv
	if c.cross(p) {
		sim.Post(p, srv.k, lat, "oneway:"+srv.Name, func(q *sim.Proc) {
			srv.Threads.Acquire(q)
			service(q)
			srv.Threads.Release()
		})
		return
	}
	p.Spawn("oneway:"+srv.Name, func(q *sim.Proc) {
		q.Sleep(lat)
		srv.Threads.Acquire(q)
		service(q)
		srv.Threads.Release()
	})
}

// RTT returns the request/response round-trip latency of the connection
// (excluding transfer and service time).
func (c *Conn) RTT() time.Duration { return 2 * c.Latency }
