// Package simnet models the network paths of a distributed file system:
// propagation latency, bandwidth-limited transfer and server-side thread
// pools with FIFO queueing.
//
// The model is intentionally at RPC granularity — the thesis shows that
// metadata performance in distributed file systems is dominated by
// request/response latency and server queueing (§4.6), not by wire
// details, so a latency + bandwidth + thread-pool abstraction captures
// the relevant behaviour.
package simnet

import (
	"time"

	"dmetabench/internal/sim"
)

// Server is an RPC service endpoint with a bounded worker thread pool.
// Requests queue in arrival order when all threads are busy.
type Server struct {
	Name    string
	Threads *sim.Resource
}

// NewServer returns a server with the given number of worker threads.
func NewServer(k *sim.Kernel, name string, threads int) *Server {
	return &Server{Name: name, Threads: sim.NewResource(k, "srv:"+name, threads)}
}

// Do runs service while holding one of the server's worker threads,
// without a network path: the execution-context half of Call. Servers
// that forward work to a peer service (clustered metadata servers) use
// it to charge the remote thread occupancy after paying the hop latency
// themselves.
func (s *Server) Do(p *sim.Proc, service func(p *sim.Proc)) {
	s.Threads.Acquire(p)
	service(p)
	s.Threads.Release()
}

// Conn is a client's path to a server: one-way latency plus a bandwidth
// limit shared by all users of the connection.
type Conn struct {
	srv *Server
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second; 0 means unlimited.
	Bandwidth int64
	// wire serializes transfers on this connection when bandwidth-limited.
	wire *sim.Resource
}

// NewConn returns a connection to srv with the given one-way latency and
// bandwidth (bytes/s, 0 = unlimited).
func NewConn(k *sim.Kernel, srv *Server, latency time.Duration, bandwidth int64) *Conn {
	c := &Conn{srv: srv, Latency: latency, Bandwidth: bandwidth}
	if bandwidth > 0 {
		c.wire = sim.NewResource(k, "wire:"+srv.Name, 1)
	}
	return c
}

// Server returns the connection's endpoint.
func (c *Conn) Server() *Server { return c.srv }

// transferTime returns the serialization delay for n bytes.
func (c *Conn) transferTime(n int64) time.Duration {
	if c.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(c.Bandwidth) * float64(time.Second))
}

// send models moving n bytes across the connection in one direction.
func (c *Conn) send(p *sim.Proc, n int64) {
	if c.wire != nil && n > 0 {
		c.wire.Use(p, c.transferTime(n))
	}
	p.Sleep(c.Latency)
}

// Call performs a synchronous RPC: request transfer and propagation,
// queueing for a server thread, the caller-supplied service body, then
// the reply path. service runs while holding a server thread; it charges
// whatever virtual time the operation costs at the server.
func (c *Conn) Call(p *sim.Proc, reqBytes, respBytes int64, service func(p *sim.Proc)) {
	c.send(p, reqBytes)
	c.srv.Threads.Acquire(p)
	service(p)
	c.srv.Threads.Release()
	c.send(p, respBytes)
}

// OneWay models a fire-and-forget message (used for asynchronous
// write-back flushes): the sender pays the transfer cost and the service
// body runs in a spawned process after the propagation delay.
func (c *Conn) OneWay(p *sim.Proc, reqBytes int64, service func(p *sim.Proc)) {
	if c.wire != nil && reqBytes > 0 {
		c.wire.Use(p, c.transferTime(reqBytes))
	}
	lat := c.Latency
	srv := c.srv
	p.Spawn("oneway:"+srv.Name, func(q *sim.Proc) {
		q.Sleep(lat)
		srv.Threads.Acquire(q)
		service(q)
		srv.Threads.Release()
	})
}

// RTT returns the request/response round-trip latency of the connection
// (excluding transfer and service time).
func (c *Conn) RTT() time.Duration { return 2 * c.Latency }
