package simnet

import (
	"testing"
	"time"

	"dmetabench/internal/sim"
)

func TestCallLatencyAndService(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 4)
	conn := NewConn(k, srv, time.Millisecond, 0)
	var elapsed time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		conn.Call(p, 100, 100, func(sp *sim.Proc) { sp.Sleep(500 * time.Microsecond) })
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2*time.Millisecond + 500*time.Microsecond
	if elapsed != want {
		t.Fatalf("RPC took %v, want %v", elapsed, want)
	}
}

func TestThreadPoolQueueing(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 2)
	conn := NewConn(k, srv, 0, 0)
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			p.Spawn("c", func(q *sim.Proc) {
				conn.Call(q, 0, 0, func(sp *sim.Proc) { sp.Sleep(time.Millisecond) })
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 6 calls of 1ms over 2 threads: 3ms.
	if k.Now() != 3*time.Millisecond {
		t.Fatalf("makespan = %v, want 3ms", k.Now())
	}
}

func TestBandwidthTransfer(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	conn := NewConn(k, srv, 0, 1<<20) // 1 MB/s
	var elapsed time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		conn.Call(p, 1<<19, 0, func(sp *sim.Proc) {}) // 512 KB at 1 MB/s = 0.5 s
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 500*time.Millisecond {
		t.Fatalf("transfer took %v, want 500ms", elapsed)
	}
}

func TestOneWayDoesNotBlockSender(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	conn := NewConn(k, srv, time.Millisecond, 0)
	served := false
	var sendElapsed time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		conn.OneWay(p, 100, func(sp *sim.Proc) {
			sp.Sleep(10 * time.Millisecond)
			served = true
		})
		sendElapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sendElapsed != 0 {
		t.Fatalf("one-way send blocked for %v", sendElapsed)
	}
	if !served {
		t.Fatal("one-way service never ran")
	}
	if k.Now() != 11*time.Millisecond {
		t.Fatalf("completion at %v, want 11ms", k.Now())
	}
}

func TestRTT(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	conn := NewConn(k, srv, 250*time.Microsecond, 0)
	if conn.RTT() != 500*time.Microsecond {
		t.Fatalf("RTT = %v", conn.RTT())
	}
}

func TestTryCallOnDownServer(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	conn := NewConn(k, srv, time.Millisecond, 0)
	conn.FailTimeout = 100 * time.Millisecond
	var errDown, errUp error
	var downElapsed time.Duration
	served := 0
	k.Spawn("client", func(p *sim.Proc) {
		srv.SetDown()
		start := p.Now()
		errDown = conn.TryCall(p, 100, 100, func(sp *sim.Proc) { served++ })
		downElapsed = p.Now() - start
		srv.SetUp()
		errUp = conn.TryCall(p, 100, 100, func(sp *sim.Proc) { served++ })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if errDown != ErrDown {
		t.Fatalf("down call error = %v, want ErrDown", errDown)
	}
	if downElapsed != 100*time.Millisecond {
		t.Fatalf("down call blocked %v, want the 100ms fail timeout", downElapsed)
	}
	if errUp != nil || served != 1 {
		t.Fatalf("recovered call: err=%v served=%d, want nil/1", errUp, served)
	}
	if srv.Downs() != 1 {
		t.Fatalf("Downs() = %d, want 1", srv.Downs())
	}
}

func TestTryCallQueuedAtCrash(t *testing.T) {
	// A request already queued for a worker thread when the server goes
	// down must fail with ErrDown instead of running its service body.
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	conn := NewConn(k, srv, 0, 0)
	conn.FailTimeout = 50 * time.Millisecond
	var queuedErr error
	queuedServed := false
	k.Spawn("holder", func(p *sim.Proc) {
		conn.TryCall(p, 0, 0, func(sp *sim.Proc) { sp.Sleep(10 * time.Millisecond) })
	})
	k.Spawn("queued", func(p *sim.Proc) {
		p.Yield() // let the holder occupy the only thread first
		queuedErr = conn.TryCall(p, 0, 0, func(sp *sim.Proc) { queuedServed = true })
	})
	k.Spawn("crasher", func(p *sim.Proc) {
		p.Sleep(5 * time.Millisecond)
		srv.SetDown()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if queuedErr != ErrDown || queuedServed {
		t.Fatalf("queued call: err=%v served=%v, want ErrDown/false", queuedErr, queuedServed)
	}
}

func TestServerDoHoldsThread(t *testing.T) {
	k := sim.New(1)
	srv := NewServer(k, "s", 1)
	// Two direct service executions on a single-thread server must
	// serialize, and Do must charge no network latency of its own.
	var done [2]time.Duration
	k.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			i := i
			p.Spawn("d", func(q *sim.Proc) {
				srv.Do(q, func(sp *sim.Proc) { sp.Sleep(time.Millisecond) })
				done[i] = q.Now()
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != time.Millisecond || done[1] != 2*time.Millisecond {
		t.Fatalf("Do completions = %v, %v; want 1ms, 2ms", done[0], done[1])
	}
}
