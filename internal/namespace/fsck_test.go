package namespace

import (
	"fmt"
	"math/rand"
	"testing"

	"dmetabench/internal/fs"
)

func TestCheckCleanTree(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, 0)
	ns.Mkdir("/a/b", 0o755, 0)
	ns.Create("/a/f", 0o644, 0)
	ns.Link("/a/f", "/a/b/g", 0)
	ns.Symlink("/a/f", "/a/s", 0)
	if problems := ns.Check(); len(problems) != 0 {
		t.Fatalf("clean tree reported: %v", problems)
	}
}

func TestCheckDetectsBadNlink(t *testing.T) {
	ns := New()
	f, _ := ns.Create("/f", 0o644, 0)
	f.Nlink = 7 // corrupt
	problems := ns.Check()
	if len(problems) == 0 {
		t.Fatal("corrupted nlink not detected")
	}
	if problems[0].Kind != "bad-nlink" {
		t.Fatalf("kind = %s", problems[0].Kind)
	}
}

func TestCheckDetectsDanglingEntry(t *testing.T) {
	ns := New()
	ns.Create("/f", 0o644, 0)
	root := ns.Get(ns.Root())
	root.children["ghost"] = 9999 // corrupt
	found := false
	for _, p := range ns.Check() {
		if p.Kind == "dangling" {
			found = true
		}
	}
	if !found {
		t.Fatal("dangling entry not detected")
	}
}

func TestCheckDetectsOrphan(t *testing.T) {
	ns := New()
	ns.Create("/f", 0o644, 0)
	root := ns.Get(ns.Root())
	delete(root.children, "f") // corrupt: inode stays allocated
	found := false
	for _, p := range ns.Check() {
		if p.Kind == "orphan" || p.Kind == "bad-count" {
			found = true
		}
	}
	if !found {
		t.Fatal("orphan not detected")
	}
}

func TestCheckDetectsBadParent(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, 0)
	ns.Mkdir("/a/b", 0o755, 0)
	b, _ := ns.Lookup("/a/b")
	b.parent = ns.Root() // corrupt
	found := false
	for _, p := range ns.Check() {
		if p.Kind == "bad-parent" {
			found = true
		}
	}
	if !found {
		t.Fatal("bad parent pointer not detected")
	}
}

// TestCheckAfterRandomOps replaces manual invariant code: any sequence of
// successful operations must leave a namespace that fsck calls clean.
func TestCheckAfterRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ns := New()
	var paths []string
	paths = append(paths, "/")
	name := func() string { return fmt.Sprintf("x%d", rng.Intn(60)) }
	for i := 0; i < 8000; i++ {
		base := paths[rng.Intn(len(paths))]
		p := base + "/" + name()
		switch rng.Intn(8) {
		case 0:
			if _, err := ns.Create(p, 0o644, 0); err == nil {
				paths = append(paths, p)
			}
		case 1:
			if _, err := ns.Mkdir(p, 0o755, 0); err == nil {
				paths = append(paths, p)
			}
		case 2:
			ns.Unlink(paths[rng.Intn(len(paths))], 0)
		case 3:
			ns.Rmdir(paths[rng.Intn(len(paths))], 0)
		case 4:
			ns.Rename(paths[rng.Intn(len(paths))], base+"/"+name(), 0)
		case 5:
			ns.Link(paths[rng.Intn(len(paths))], base+"/"+name(), 0)
		case 6:
			ns.Symlink(paths[rng.Intn(len(paths))], base+"/"+name(), 0)
		case 7:
			ns.ReadDir(paths[rng.Intn(len(paths))], 0)
		}
		if i%1000 == 0 {
			if problems := ns.Check(); len(problems) != 0 {
				t.Fatalf("iteration %d: %v", i, problems)
			}
		}
	}
	if problems := ns.Check(); len(problems) != 0 {
		t.Fatalf("final check: %v", problems)
	}
	_ = fs.OK
}
