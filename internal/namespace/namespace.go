// Package namespace implements an in-memory hierarchical POSIX namespace:
// inodes, directories, hardlinks and the metadata operations of §2.3 with
// their error semantics (uniqueness of names, atomic rename, ENOTEMPTY on
// rmdir, nlink accounting).
//
// Every simulated file system server and the local file system model hold
// a Namespace as their authoritative metadata store. The package is pure
// data structure — it consumes no virtual time itself; cost models for
// directory indexes (linear list, name hash, B-tree, §2.4.2) are provided
// so callers can charge realistic per-operation times that depend on
// directory size.
package namespace

import (
	"math"
	"sort"
	"time"

	"dmetabench/internal/fs"
)

// Namespace is a single-rooted POSIX namespace. It is not safe for
// concurrent use; in the simulator all access is serialized by the DES
// kernel, and real-mode users must lock externally.
type Namespace struct {
	inodes  map[fs.Ino]*Inode
	nextIno fs.Ino
	root    fs.Ino

	// dirCache memoizes directory path resolution (span text -> inode),
	// so repeated deep-path operations hash one string instead of one
	// string per component. See resolve for the invalidation contract.
	dirCache map[string]dirCacheEnt

	// Totals maintained incrementally for profiling and charts.
	files int
	dirs  int
}

// dirCacheEnt is one memoized directory resolution.
type dirCacheEnt struct {
	ino   fs.Ino
	depth int32
}

// dirCacheMax bounds the resolution cache; when full it is reset rather
// than evicted, which keeps the hot path branch-free.
const dirCacheMax = 1 << 14

// Inode is one file system object.
type Inode struct {
	Ino      fs.Ino
	Type     fs.FileType
	Mode     uint32
	Nlink    uint32
	UID, GID uint32
	Size     int64
	Atime    time.Duration
	Mtime    time.Duration
	Ctime    time.Duration

	// children is non-nil for directories and maps entry name to inode.
	children map[string]fs.Ino
	// parent is the containing directory (for directories; ".." link).
	parent fs.Ino
	// Target holds the symlink target for symlinks.
	Target string
}

// New returns a namespace containing only the root directory.
func New() *Namespace {
	ns := &Namespace{
		inodes:   make(map[fs.Ino]*Inode),
		nextIno:  1,
		dirCache: make(map[string]dirCacheEnt),
	}
	root := &Inode{
		Ino: 1, Type: fs.TypeDirectory, Mode: 0o755, Nlink: 2,
		children: make(map[string]fs.Ino),
	}
	root.parent = root.Ino
	ns.inodes[root.Ino] = root
	ns.root = root.Ino
	ns.dirs = 1
	return ns
}

// Root returns the root inode number.
func (ns *Namespace) Root() fs.Ino { return ns.root }

// NumFiles returns the number of regular files and symlinks.
func (ns *Namespace) NumFiles() int { return ns.files }

// NumDirs returns the number of directories (including the root).
func (ns *Namespace) NumDirs() int { return ns.dirs }

// NumInodes returns the number of live inodes.
func (ns *Namespace) NumInodes() int { return len(ns.inodes) }

// Get returns the inode by number, or nil.
func (ns *Namespace) Get(ino fs.Ino) *Inode { return ns.inodes[ino] }

// Lookup resolves path to an inode. It follows "." and ".." but not
// symlinks (metadata benchmarks act on the link itself). Runs of slashes
// collapse as POSIX requires.
func (ns *Namespace) Lookup(path string) (*Inode, error) {
	ino, _, errno := ns.resolvePath(path)
	if errno != fs.OK {
		return nil, fs.NewError("walk", path, errno)
	}
	return ns.inodes[ino], nil
}

// LookupDepth resolves path and additionally reports the number of
// directory components traversed, which callers use to charge path-walk
// costs (POSIX requires a permission check on every component, §2.3.1).
func (ns *Namespace) LookupDepth(path string) (*Inode, int, error) {
	ino, depth, errno := ns.resolvePath(path)
	if errno != fs.OK {
		return nil, depth, fs.NewError("walk", path, errno)
	}
	return ns.inodes[ino], depth, nil
}

// pathSpan returns the index range of p with leading and trailing
// slashes trimmed; start == end for the root ("/", "", "///").
func pathSpan(p string) (start, end int) {
	start, end = 0, len(p)
	for start < end && p[start] == '/' {
		start++
	}
	for end > start && p[end-1] == '/' {
		end--
	}
	return start, end
}

// resolvePath resolves a whole path string.
func (ns *Namespace) resolvePath(p string) (fs.Ino, int, fs.Errno) {
	start, end := pathSpan(p)
	return ns.resolve(p, start, end)
}

// resolve resolves the path span p[start:end) from the root without
// allocating: components are sliced out by index, never split into a
// slice. Successful directory resolutions are memoized in dirCache under
// the exact span text, so a deep path that is resolved repeatedly (the
// per-operation parent walks of Create/Stat) costs one map probe instead
// of one per component. Creating entries never changes the meaning of a
// span that already resolves, so the cache is only invalidated —
// wholesale — when a directory is removed, replaced or moved (Rmdir and
// directory-affecting Rename).
//
// depth counts traversed components (including "." and "..") and is also
// reported on failure, matching the path-walk charging contract of
// LookupDepth.
func (ns *Namespace) resolve(p string, start, end int) (fs.Ino, int, fs.Errno) {
	for end > start && p[end-1] == '/' {
		end--
	}
	if start >= end {
		return ns.root, 0, fs.OK
	}
	if c, ok := ns.dirCache[p[start:end]]; ok {
		return c.ino, int(c.depth), fs.OK
	}
	j := end
	for j > start && p[j-1] != '/' {
		j--
	}
	parent, depth, errno := ns.resolve(p, start, j)
	if errno != fs.OK {
		return 0, depth, errno
	}
	node := ns.inodes[parent]
	if node.Type != fs.TypeDirectory {
		return 0, depth, fs.ENOTDIR
	}
	depth++
	switch name := p[j:end]; name {
	case ".":
		return parent, depth, fs.OK
	case "..":
		return node.parent, depth, fs.OK
	default:
		next, ok := node.children[name]
		if !ok {
			return 0, depth, fs.ENOENT
		}
		if ns.inodes[next].Type == fs.TypeDirectory {
			if len(ns.dirCache) >= dirCacheMax {
				clear(ns.dirCache)
			}
			ns.dirCache[p[start:end]] = dirCacheEnt{ino: next, depth: int32(depth)}
		}
		return next, depth, fs.OK
	}
}

// invalidateDirCache drops all memoized resolutions; called whenever a
// directory is unlinked from or moved within the tree.
func (ns *Namespace) invalidateDirCache() {
	clear(ns.dirCache)
}

// parentAndName resolves the parent directory of path and returns it with
// the final component.
func (ns *Namespace) parentAndName(op, path string) (*Inode, string, error) {
	start, end := pathSpan(path)
	if start >= end {
		return nil, "", fs.NewError(op, path, fs.EINVAL)
	}
	j := end
	for j > start && path[j-1] != '/' {
		j--
	}
	name := path[j:end]
	if name == "." || name == ".." {
		return nil, "", fs.NewError(op, path, fs.EINVAL)
	}
	ino, _, errno := ns.resolve(path, start, j)
	if errno != fs.OK {
		return nil, "", fs.NewError("walk", path, errno)
	}
	dir := ns.inodes[ino]
	if dir.Type != fs.TypeDirectory {
		return nil, "", fs.NewError(op, path, fs.ENOTDIR)
	}
	return dir, name, nil
}

func (ns *Namespace) alloc(t fs.FileType, mode uint32, now time.Duration) *Inode {
	ns.nextIno++
	ino := &Inode{
		Ino: ns.nextIno, Type: t, Mode: mode,
		Atime: now, Mtime: now, Ctime: now,
	}
	if t == fs.TypeDirectory {
		ino.children = make(map[string]fs.Ino)
		ino.Nlink = 2
	} else {
		ino.Nlink = 1
	}
	ns.inodes[ino.Ino] = ino
	return ino
}

// Create makes a regular file at path. It fails with EEXIST if any entry
// with that name exists (uniqueness guarantee, §2.6.3).
func (ns *Namespace) Create(path string, mode uint32, now time.Duration) (*Inode, error) {
	dir, name, err := ns.parentAndName("create", path)
	if err != nil {
		return nil, err
	}
	if _, ok := dir.children[name]; ok {
		return nil, fs.NewError("create", path, fs.EEXIST)
	}
	ino := ns.alloc(fs.TypeRegular, mode, now)
	dir.children[name] = ino.Ino
	dir.Mtime, dir.Ctime = now, now
	ns.files++
	return ino, nil
}

// Mkdir makes a directory at path.
func (ns *Namespace) Mkdir(path string, mode uint32, now time.Duration) (*Inode, error) {
	dir, name, err := ns.parentAndName("mkdir", path)
	if err != nil {
		return nil, err
	}
	if _, ok := dir.children[name]; ok {
		return nil, fs.NewError("mkdir", path, fs.EEXIST)
	}
	ino := ns.alloc(fs.TypeDirectory, mode, now)
	ino.parent = dir.Ino
	dir.children[name] = ino.Ino
	dir.Nlink++ // child's ".."
	dir.Mtime, dir.Ctime = now, now
	ns.dirs++
	return ino, nil
}

// Symlink creates a symbolic link at path pointing at target.
func (ns *Namespace) Symlink(target, path string, now time.Duration) (*Inode, error) {
	dir, name, err := ns.parentAndName("symlink", path)
	if err != nil {
		return nil, err
	}
	if _, ok := dir.children[name]; ok {
		return nil, fs.NewError("symlink", path, fs.EEXIST)
	}
	ino := ns.alloc(fs.TypeSymlink, 0o777, now)
	ino.Target = target
	ino.Size = int64(len(target))
	dir.children[name] = ino.Ino
	dir.Mtime, dir.Ctime = now, now
	ns.files++
	return ino, nil
}

// Link creates a hardlink newPath to the file at oldPath. Directories
// cannot be hardlinked (§2.1.1).
func (ns *Namespace) Link(oldPath, newPath string, now time.Duration) error {
	target, err := ns.Lookup(oldPath)
	if err != nil {
		return err
	}
	if target.Type == fs.TypeDirectory {
		return fs.NewError("link", oldPath, fs.EISDIR)
	}
	dir, name, err := ns.parentAndName("link", newPath)
	if err != nil {
		return err
	}
	if _, ok := dir.children[name]; ok {
		return fs.NewError("link", newPath, fs.EEXIST)
	}
	dir.children[name] = target.Ino
	target.Nlink++
	target.Ctime = now
	dir.Mtime, dir.Ctime = now, now
	return nil
}

// Unlink removes the directory entry for a file. The inode is freed when
// its last link goes (open-file retention is a client concern, §2.3.1).
func (ns *Namespace) Unlink(path string, now time.Duration) error {
	dir, name, err := ns.parentAndName("unlink", path)
	if err != nil {
		return err
	}
	childIno, ok := dir.children[name]
	if !ok {
		return fs.NewError("unlink", path, fs.ENOENT)
	}
	child := ns.inodes[childIno]
	if child.Type == fs.TypeDirectory {
		return fs.NewError("unlink", path, fs.EISDIR)
	}
	delete(dir.children, name)
	dir.Mtime, dir.Ctime = now, now
	child.Nlink--
	child.Ctime = now
	if child.Nlink == 0 {
		delete(ns.inodes, childIno)
		ns.files--
	}
	return nil
}

// Rmdir removes an empty directory.
func (ns *Namespace) Rmdir(path string, now time.Duration) error {
	dir, name, err := ns.parentAndName("rmdir", path)
	if err != nil {
		return err
	}
	childIno, ok := dir.children[name]
	if !ok {
		return fs.NewError("rmdir", path, fs.ENOENT)
	}
	child := ns.inodes[childIno]
	if child.Type != fs.TypeDirectory {
		return fs.NewError("rmdir", path, fs.ENOTDIR)
	}
	if len(child.children) != 0 {
		return fs.NewError("rmdir", path, fs.ENOTEMPTY)
	}
	delete(dir.children, name)
	delete(ns.inodes, childIno)
	dir.Nlink--
	dir.Mtime, dir.Ctime = now, now
	ns.dirs--
	ns.invalidateDirCache()
	return nil
}

// Rename atomically moves oldPath to newPath (§2.6.3). An existing
// regular-file target is replaced; an existing directory target must be
// empty. Renaming a directory under itself fails with EINVAL.
func (ns *Namespace) Rename(oldPath, newPath string, now time.Duration) error {
	odir, oname, err := ns.parentAndName("rename", oldPath)
	if err != nil {
		return err
	}
	srcIno, ok := odir.children[oname]
	if !ok {
		return fs.NewError("rename", oldPath, fs.ENOENT)
	}
	src := ns.inodes[srcIno]
	ndir, nname, err := ns.parentAndName("rename", newPath)
	if err != nil {
		return err
	}
	if src.Type == fs.TypeDirectory {
		// Disallow moving a directory into its own subtree.
		for d := ndir; ; {
			if d.Ino == srcIno {
				return fs.NewError("rename", newPath, fs.EINVAL)
			}
			if d.Ino == ns.root {
				break
			}
			d = ns.inodes[d.parent]
		}
	}
	if dstIno, ok := ndir.children[nname]; ok {
		if dstIno == srcIno {
			return nil // same object; POSIX no-op
		}
		dst := ns.inodes[dstIno]
		switch {
		case dst.Type == fs.TypeDirectory && src.Type != fs.TypeDirectory:
			return fs.NewError("rename", newPath, fs.EISDIR)
		case dst.Type != fs.TypeDirectory && src.Type == fs.TypeDirectory:
			return fs.NewError("rename", newPath, fs.ENOTDIR)
		case dst.Type == fs.TypeDirectory:
			if len(dst.children) != 0 {
				return fs.NewError("rename", newPath, fs.ENOTEMPTY)
			}
			delete(ns.inodes, dstIno)
			ndir.Nlink--
			ns.dirs--
			ns.invalidateDirCache() // a directory was replaced
		default:
			dst.Nlink--
			if dst.Nlink == 0 {
				delete(ns.inodes, dstIno)
				ns.files--
			}
		}
	}
	delete(odir.children, oname)
	ndir.children[nname] = srcIno
	if src.Type == fs.TypeDirectory {
		// Moving a directory changes what every span below its old name
		// resolves to; file moves cannot affect directory resolution.
		ns.invalidateDirCache()
	}
	if src.Type == fs.TypeDirectory && odir.Ino != ndir.Ino {
		odir.Nlink--
		ndir.Nlink++
		src.parent = ndir.Ino
	}
	src.Ctime = now
	odir.Mtime, odir.Ctime = now, now
	ndir.Mtime, ndir.Ctime = now, now
	return nil
}

// Stat returns the attributes of the object at path.
func (ns *Namespace) Stat(path string) (fs.Attr, error) {
	node, err := ns.Lookup(path)
	if err != nil {
		return fs.Attr{}, err
	}
	return node.Attr(), nil
}

// Attr converts the inode to the public attribute struct.
func (n *Inode) Attr() fs.Attr {
	return fs.Attr{
		Ino: n.Ino, Type: n.Type, Mode: n.Mode, Nlink: n.Nlink,
		UID: n.UID, GID: n.GID, Size: n.Size,
		Blocks: (n.Size + 511) / 512,
		Atime:  n.Atime, Mtime: n.Mtime, Ctime: n.Ctime,
	}
}

// NumChildren returns the entry count of a directory inode (0 otherwise).
func (n *Inode) NumChildren() int { return len(n.children) }

// ReadDir lists the entries of the directory at path in name order
// (deterministic for the simulator; real readdir order is unspecified).
func (ns *Namespace) ReadDir(path string, now time.Duration) ([]fs.DirEntry, error) {
	node, err := ns.Lookup(path)
	if err != nil {
		return nil, err
	}
	if node.Type != fs.TypeDirectory {
		return nil, fs.NewError("readdir", path, fs.ENOTDIR)
	}
	node.Atime = now
	ents := make([]fs.DirEntry, 0, len(node.children))
	for name, ino := range node.children {
		ents = append(ents, fs.DirEntry{Name: name, Ino: ino, Type: ns.inodes[ino].Type})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	return ents, nil
}

// SetSize updates a file's size (used by Write models) and stamps mtime.
func (ns *Namespace) SetSize(ino fs.Ino, size int64, now time.Duration) error {
	n := ns.inodes[ino]
	if n == nil {
		return fs.NewError("setsize", "", fs.ESTALE)
	}
	if n.Type == fs.TypeDirectory {
		return fs.NewError("setsize", "", fs.EISDIR)
	}
	n.Size = size
	n.Mtime, n.Ctime = now, now
	return nil
}

// DirIndex identifies the directory data structure used by a server's
// local file system, which determines how per-entry costs scale with
// directory size (§2.4.2).
type DirIndex int

// Directory index kinds.
const (
	// IndexLinear is the traditional UFS linear entry list: O(n) lookup
	// and insert (the insert must verify uniqueness by scanning).
	IndexLinear DirIndex = iota
	// IndexHash is a name-hash index (WAFL-style): near O(1) with a mild
	// growth term from bucket chains.
	IndexHash
	// IndexBTree is a B-tree directory (XFS/ldiskfs htree): O(log n).
	IndexBTree
)

func (d DirIndex) String() string {
	switch d {
	case IndexLinear:
		return "linear"
	case IndexHash:
		return "hash"
	case IndexBTree:
		return "btree"
	default:
		return "unknown"
	}
}

// EntryCost returns the relative cost (in abstract units, 1.0 = cost in a
// small directory) of a single lookup or insert in a directory with n
// entries under the given index. Servers multiply this by their base
// per-entry service time.
func (d DirIndex) EntryCost(n int) float64 {
	if n < 1 {
		n = 1
	}
	switch d {
	case IndexLinear:
		// Scanning half the entries on average; normalized so that
		// a 128-entry directory costs ~1.
		c := float64(n) / 256.0
		if c < 1 {
			return 1
		}
		return c
	case IndexHash:
		// Bucket chains grow slowly; 1% per doubling beyond 4k entries.
		if n <= 4096 {
			return 1
		}
		return 1 + 0.01*math.Log2(float64(n)/4096)
	case IndexBTree:
		// log16(n) levels, normalized to 1 for small directories.
		c := math.Log(float64(n)) / math.Log(16) / 2
		if c < 1 {
			return 1
		}
		return c
	default:
		return 1
	}
}
