package namespace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dmetabench/internal/fs"
)

func t0() time.Duration { return 0 }

func TestCreateLookupStat(t *testing.T) {
	ns := New()
	if _, err := ns.Mkdir("/dir", 0o755, t0()); err != nil {
		t.Fatal(err)
	}
	ino, err := ns.Create("/dir/file", 0o644, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ns.Stat("/dir/file")
	if err != nil {
		t.Fatal(err)
	}
	if a.Ino != ino.Ino || a.Type != fs.TypeRegular || a.Nlink != 1 {
		t.Fatalf("attr = %+v", a)
	}
	if a.Mtime != 5*time.Second {
		t.Fatalf("mtime = %v", a.Mtime)
	}
	if ns.NumFiles() != 1 || ns.NumDirs() != 2 {
		t.Fatalf("files=%d dirs=%d", ns.NumFiles(), ns.NumDirs())
	}
}

func TestCreateErrors(t *testing.T) {
	ns := New()
	if _, err := ns.Create("/f", 0o644, t0()); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Create("/f", 0o644, t0()); fs.CodeOf(err) != fs.EEXIST {
		t.Fatalf("dup create err = %v, want EEXIST", err)
	}
	if _, err := ns.Create("/nodir/f", 0o644, t0()); fs.CodeOf(err) != fs.ENOENT {
		t.Fatalf("err = %v, want ENOENT", err)
	}
	if _, err := ns.Create("/f/under-file", 0o644, t0()); fs.CodeOf(err) != fs.ENOTDIR {
		t.Fatalf("err = %v, want ENOTDIR", err)
	}
	if _, err := ns.Create("/", 0o644, t0()); fs.CodeOf(err) != fs.EINVAL {
		t.Fatalf("err = %v, want EINVAL", err)
	}
}

func TestMkdirRmdir(t *testing.T) {
	ns := New()
	if _, err := ns.Mkdir("/a", 0o755, t0()); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Mkdir("/a/b", 0o755, t0()); err != nil {
		t.Fatal(err)
	}
	// Root nlink: 2 + 1 subdir = 3; /a nlink: 2 + 1 = 3.
	root, _ := ns.Lookup("/")
	if root.Nlink != 3 {
		t.Fatalf("root nlink = %d, want 3", root.Nlink)
	}
	if err := ns.Rmdir("/a", t0()); fs.CodeOf(err) != fs.ENOTEMPTY {
		t.Fatalf("rmdir non-empty = %v, want ENOTEMPTY", err)
	}
	if err := ns.Rmdir("/a/b", t0()); err != nil {
		t.Fatal(err)
	}
	if err := ns.Rmdir("/a", t0()); err != nil {
		t.Fatal(err)
	}
	if root.Nlink != 2 {
		t.Fatalf("root nlink = %d, want 2", root.Nlink)
	}
	if ns.NumDirs() != 1 {
		t.Fatalf("dirs = %d", ns.NumDirs())
	}
}

func TestUnlinkAndHardlinks(t *testing.T) {
	ns := New()
	f, _ := ns.Create("/f", 0o644, t0())
	if err := ns.Link("/f", "/g", t0()); err != nil {
		t.Fatal(err)
	}
	if f.Nlink != 2 {
		t.Fatalf("nlink = %d", f.Nlink)
	}
	if err := ns.Unlink("/f", t0()); err != nil {
		t.Fatal(err)
	}
	if ns.NumFiles() != 1 {
		t.Fatalf("files = %d, want 1 (one link left)", ns.NumFiles())
	}
	a, err := ns.Stat("/g")
	if err != nil || a.Nlink != 1 {
		t.Fatalf("stat g: %v %+v", err, a)
	}
	if err := ns.Unlink("/g", t0()); err != nil {
		t.Fatal(err)
	}
	if ns.NumFiles() != 0 || ns.NumInodes() != 1 {
		t.Fatalf("files=%d inodes=%d", ns.NumFiles(), ns.NumInodes())
	}
}

func TestLinkToDirForbidden(t *testing.T) {
	ns := New()
	ns.Mkdir("/d", 0o755, t0())
	if err := ns.Link("/d", "/d2", t0()); fs.CodeOf(err) != fs.EISDIR {
		t.Fatalf("err = %v, want EISDIR", err)
	}
}

func TestRenameBasic(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, t0())
	ns.Mkdir("/b", 0o755, t0())
	ns.Create("/a/f", 0o644, t0())
	if err := ns.Rename("/a/f", "/b/g", t0()); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stat("/a/f"); fs.CodeOf(err) != fs.ENOENT {
		t.Fatalf("old path: %v", err)
	}
	if _, err := ns.Stat("/b/g"); err != nil {
		t.Fatalf("new path: %v", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	ns := New()
	src, _ := ns.Create("/src", 0o644, t0())
	ns.Create("/dst", 0o644, t0())
	if err := ns.Rename("/src", "/dst", t0()); err != nil {
		t.Fatal(err)
	}
	a, err := ns.Stat("/dst")
	if err != nil || a.Ino != src.Ino {
		t.Fatalf("dst = %+v, %v; want ino %d", a, err, src.Ino)
	}
	if ns.NumFiles() != 1 {
		t.Fatalf("files = %d, want 1 (old dst freed)", ns.NumFiles())
	}
}

func TestRenameDirRules(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, t0())
	ns.Mkdir("/a/b", 0o755, t0())
	ns.Create("/f", 0o644, t0())
	// Move dir into own subtree.
	if err := ns.Rename("/a", "/a/b/c", t0()); fs.CodeOf(err) != fs.EINVAL {
		t.Fatalf("err = %v, want EINVAL", err)
	}
	// File over directory.
	if err := ns.Rename("/f", "/a", t0()); fs.CodeOf(err) != fs.EISDIR {
		t.Fatalf("err = %v, want EISDIR", err)
	}
	// Directory over file.
	if err := ns.Rename("/a", "/f", t0()); fs.CodeOf(err) != fs.ENOTDIR {
		t.Fatalf("err = %v, want ENOTDIR", err)
	}
	// Directory over empty directory works.
	ns.Mkdir("/empty", 0o755, t0())
	if err := ns.Rename("/a/b", "/empty", t0()); err != nil {
		t.Fatal(err)
	}
	// Parent nlink bookkeeping: /a lost its subdir.
	a, _ := ns.Lookup("/a")
	if a.Nlink != 2 {
		t.Fatalf("nlink(/a) = %d, want 2", a.Nlink)
	}
}

func TestRenameSameObjectNoop(t *testing.T) {
	ns := New()
	ns.Create("/f", 0o644, t0())
	ns.Link("/f", "/g", t0())
	if err := ns.Rename("/f", "/g", t0()); err != nil {
		t.Fatal(err)
	}
	// POSIX: both names remain.
	if _, err := ns.Stat("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stat("/g"); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirSortedAndDepth(t *testing.T) {
	ns := New()
	ns.Mkdir("/d", 0o755, t0())
	for _, n := range []string{"c", "a", "b"} {
		ns.Create("/d/"+n, 0o644, t0())
	}
	ents, err := ns.ReadDir("/d", t0())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[2].Name != "c" {
		t.Fatalf("ents = %v", ents)
	}
	_, depth, err := ns.LookupDepth("/d/a")
	if err != nil || depth != 2 {
		t.Fatalf("depth = %d, %v", depth, err)
	}
}

func TestDotDotWalk(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, t0())
	ns.Mkdir("/a/b", 0o755, t0())
	ns.Create("/a/f", 0o644, t0())
	if _, err := ns.Stat("/a/b/../f"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stat("/../a/f"); err != nil {
		t.Fatal(err) // root's .. is root
	}
	if _, err := ns.Stat("/a/./f"); err != nil {
		t.Fatal(err)
	}
}

func TestSetSize(t *testing.T) {
	ns := New()
	f, _ := ns.Create("/f", 0o644, t0())
	if err := ns.SetSize(f.Ino, 1000, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	a, _ := ns.Stat("/f")
	if a.Size != 1000 || a.Blocks != 2 || a.Mtime != 3*time.Second {
		t.Fatalf("attr = %+v", a)
	}
}

// invariantCheck verifies global invariants that must hold after any
// operation sequence: counts match a full tree walk, nlinks are
// consistent, every child points at a live inode.
func invariantCheck(t *testing.T, ns *Namespace) {
	t.Helper()
	files, dirs := 0, 0
	var walk func(ino fs.Ino)
	seen := map[fs.Ino]int{} // hardlink counting
	walk = func(ino fs.Ino) {
		n := ns.Get(ino)
		if n == nil {
			t.Fatalf("dangling child inode %d", ino)
		}
		if n.Type == fs.TypeDirectory {
			dirs++
			wantNlink := uint32(2)
			for _, c := range n.children {
				child := ns.Get(c)
				if child == nil {
					t.Fatalf("directory %d has dangling child %d", ino, c)
				}
				if child.Type == fs.TypeDirectory {
					wantNlink++
					walk(c)
				} else {
					seen[c]++
				}
			}
			if n.Nlink != wantNlink {
				t.Fatalf("dir %d nlink = %d, want %d", ino, n.Nlink, wantNlink)
			}
		}
	}
	walk(ns.Root())
	files = len(seen)
	for ino, cnt := range seen {
		n := ns.Get(ino)
		if n.Nlink != uint32(cnt) {
			t.Fatalf("file %d nlink = %d, want %d", ino, n.Nlink, cnt)
		}
	}
	if files != ns.NumFiles() {
		t.Fatalf("NumFiles = %d, walk found %d", ns.NumFiles(), files)
	}
	if dirs != ns.NumDirs() {
		t.Fatalf("NumDirs = %d, walk found %d", ns.NumDirs(), dirs)
	}
	if len(ns.inodes) != files+dirs {
		t.Fatalf("inodes = %d, want %d", len(ns.inodes), files+dirs)
	}
}

// TestRandomOpsInvariants drives the namespace with random operation
// sequences and checks invariants throughout.
func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ns := New()
	paths := []string{"/"}
	randPath := func() string { return paths[rng.Intn(len(paths))] }
	newName := func() string { return fmt.Sprintf("n%d", rng.Intn(50)) }
	for i := 0; i < 5000; i++ {
		base := randPath()
		p := base + "/" + newName()
		switch rng.Intn(7) {
		case 0:
			if _, err := ns.Create(p, 0o644, t0()); err == nil {
				paths = append(paths, p)
			}
		case 1:
			if _, err := ns.Mkdir(p, 0o755, t0()); err == nil {
				paths = append(paths, p)
			}
		case 2:
			ns.Unlink(randPath(), t0())
		case 3:
			ns.Rmdir(randPath(), t0())
		case 4:
			ns.Rename(randPath(), base+"/"+newName(), t0())
		case 5:
			ns.Link(randPath(), base+"/"+newName(), t0())
		case 6:
			ns.Stat(randPath())
		}
		if i%500 == 0 {
			invariantCheck(t, ns)
		}
	}
	invariantCheck(t, ns)
}

// Property: create then unlink always restores the previous file count,
// for arbitrary names.
func TestCreateUnlinkRoundTrip(t *testing.T) {
	f := func(rawName string) bool {
		name := fmt.Sprintf("f%x", []byte(rawName))
		if len(name) > 200 {
			name = name[:200]
		}
		ns := New()
		before := ns.NumInodes()
		if _, err := ns.Create("/"+name, 0o644, t0()); err != nil {
			return false
		}
		if err := ns.Unlink("/"+name, t0()); err != nil {
			return false
		}
		return ns.NumInodes() == before && ns.NumFiles() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: directory entry names are unique — creating n distinct names
// yields n entries; creating any duplicate fails.
func TestUniqueNamesProperty(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ns := New()
		names := map[string]bool{}
		for i := 0; i < int(count); i++ {
			name := fmt.Sprintf("f%d", rng.Intn(40))
			_, err := ns.Create("/"+name, 0o644, t0())
			if names[name] {
				if fs.CodeOf(err) != fs.EEXIST {
					return false
				}
			} else {
				if err != nil {
					return false
				}
				names[name] = true
			}
		}
		ents, err := ns.ReadDir("/", t0())
		return err == nil && len(ents) == len(names)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryCostShapes(t *testing.T) {
	// Linear grows linearly, hash stays near-flat, btree logarithmic.
	lin1, lin2 := IndexLinear.EntryCost(1000), IndexLinear.EntryCost(100000)
	if lin2 < lin1*50 {
		t.Fatalf("linear cost not linear: %f -> %f", lin1, lin2)
	}
	h1, h2 := IndexHash.EntryCost(1000), IndexHash.EntryCost(1000000)
	if h2 > h1*2 {
		t.Fatalf("hash cost grew too fast: %f -> %f", h1, h2)
	}
	b1, b2 := IndexBTree.EntryCost(1000), IndexBTree.EntryCost(1000000)
	if b2 > b1*3 {
		t.Fatalf("btree cost grew too fast: %f -> %f", b1, b2)
	}
	for _, d := range []DirIndex{IndexLinear, IndexHash, IndexBTree} {
		if c := d.EntryCost(0); c != 1 {
			t.Fatalf("%v cost(0) = %f", d, c)
		}
	}
}
