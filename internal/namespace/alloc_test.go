package namespace

import (
	"fmt"
	"testing"
)

// The zero-alloc contract of the resolution path: Lookup of an existing
// deep path must not allocate at all (no strings.Split slices, no error
// values on success), and Create must be bounded by the inode itself
// plus amortized map growth.

func TestLookupAllocFree(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, 0)
	ns.Mkdir("/a/b", 0o755, 0)
	ns.Mkdir("/a/b/c", 0o755, 0)
	ns.Create("/a/b/c/leaf", 0o644, 0)
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := ns.Lookup("/a/b/c/leaf"); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Lookup allocated %.1f objects/op, want 0", avg)
	}
	// The miss path must stay allocation-free up to the error value the
	// caller receives (one *fs.Error).
	if avg := testing.AllocsPerRun(200, func() {
		ns.Lookup("/a/b/c/missing")
	}); avg > 1 {
		t.Fatalf("Lookup miss allocated %.1f objects/op, want <= 1", avg)
	}
}

func TestCreateAllocBound(t *testing.T) {
	ns := New()
	ns.Mkdir("/d", 0o755, 0)
	paths := make([]string, 20000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/d/%d", i)
	}
	i := 0
	avg := testing.AllocsPerRun(10000, func() {
		if _, err := ns.Create(paths[i], 0o644, 0); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// One inode plus amortized map growth (directory entries + inode
	// table); the seed implementation sat at ~5 with the split-based walk.
	if avg > 3 {
		t.Fatalf("Create allocated %.1f objects/op, want <= 3", avg)
	}
}
