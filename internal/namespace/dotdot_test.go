package namespace

import "testing"

func TestDotDotAtRoot(t *testing.T) {
	ns := New()
	ns.Mkdir("/a", 0o755, 0)
	n, err := ns.Lookup("/..")
	if err != nil || n == nil || n.Ino != ns.Root() {
		t.Fatalf("Lookup(/..) = %v, %v", n, err)
	}
	n, err = ns.Lookup("/../a")
	if err != nil || n == nil {
		t.Fatalf("Lookup(/../a) = %v, %v", n, err)
	}
	n, err = ns.Lookup("/../../a/../a")
	if err != nil || n == nil {
		t.Fatalf("Lookup(/../../a/../a) = %v, %v", n, err)
	}
}
