package namespace

import (
	"fmt"

	"dmetabench/internal/fs"
)

// Problem is one inconsistency found by Check.
type Problem struct {
	Ino  fs.Ino
	Kind string
	Note string
}

func (p Problem) String() string {
	return fmt.Sprintf("inode %d: %s (%s)", p.Ino, p.Kind, p.Note)
}

// Check is the file system checker of §2.7.1: it walks the tree from the
// root and verifies the mutual consistency of the metadata structures —
// link counts, parent pointers, reachability and the maintained totals.
// A healthy namespace returns an empty slice. It exists both as a test
// oracle for the simulator and as the programmatic equivalent of fsck
// for tooling built on the package.
func (ns *Namespace) Check() []Problem {
	var problems []Problem
	report := func(ino fs.Ino, kind, note string, args ...interface{}) {
		problems = append(problems, Problem{Ino: ino, Kind: kind, Note: fmt.Sprintf(note, args...)})
	}

	reachableFiles := make(map[fs.Ino]uint32) // ino -> observed link count
	reachableDirs := make(map[fs.Ino]bool)
	var walk func(ino fs.Ino)
	walk = func(ino fs.Ino) {
		n := ns.inodes[ino]
		if n == nil {
			report(ino, "dangling", "referenced directory inode missing")
			return
		}
		if reachableDirs[ino] {
			report(ino, "dir-loop", "directory reachable twice")
			return
		}
		reachableDirs[ino] = true
		wantNlink := uint32(2)
		for name, child := range n.children {
			c := ns.inodes[child]
			if c == nil {
				report(child, "dangling", "entry %q in dir %d points nowhere", name, ino)
				continue
			}
			switch c.Type {
			case fs.TypeDirectory:
				wantNlink++
				if c.parent != ino {
					report(child, "bad-parent", "parent is %d, expected %d", c.parent, ino)
				}
				walk(child)
			default:
				reachableFiles[child]++
			}
		}
		if n.Nlink != wantNlink {
			report(ino, "bad-nlink", "dir nlink %d, expected %d", n.Nlink, wantNlink)
		}
	}
	root := ns.inodes[ns.root]
	if root == nil {
		return []Problem{{Ino: ns.root, Kind: "no-root", Note: "root inode missing"}}
	}
	if root.parent != ns.root {
		report(ns.root, "bad-parent", "root dot-dot must point at itself")
	}
	walk(ns.root)

	for ino, links := range reachableFiles {
		if n := ns.inodes[ino]; n.Nlink != links {
			report(ino, "bad-nlink", "file nlink %d, %d entries reference it", n.Nlink, links)
		}
	}
	for ino, n := range ns.inodes {
		switch n.Type {
		case fs.TypeDirectory:
			if !reachableDirs[ino] {
				report(ino, "orphan", "directory not reachable from root")
			}
		default:
			if reachableFiles[ino] == 0 {
				report(ino, "orphan", "file has no directory entry")
			}
		}
	}
	if got := len(reachableFiles); got != ns.files {
		report(0, "bad-count", "file counter %d, walk found %d", ns.files, got)
	}
	if got := len(reachableDirs); got != ns.dirs {
		report(0, "bad-count", "dir counter %d, walk found %d", ns.dirs, got)
	}
	return problems
}

// MustBeConsistent panics with the problem list if the namespace is
// inconsistent; a convenience for tests and examples.
func (ns *Namespace) MustBeConsistent() {
	if problems := ns.Check(); len(problems) > 0 {
		panic(fmt.Sprintf("namespace inconsistent: %v", problems))
	}
}
