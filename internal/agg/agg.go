// Package agg models millions of background clients analytically: an
// aggregate arrival process per metadata shard instead of one simulated
// process per client. A Model describes the population (size, per-client
// op rate, operation mix, Zipf object popularity, diurnal and
// flash-crowd rate modulation, session churn); NewSources compiles it
// into per-(shard, lane) Sources whose Tick method returns the number of
// operations of each class that arrive in one batching interval. The
// sharded MDS prices and injects those batches as virtual-time load
// (shard.FS.AttachAggregate), so 1M+ aggregate clients cost a few dozen
// small structs of memory while a handful of fully-simulated foreground
// clients observe the contention.
//
// Determinism contract: every Source is a pure function of (Model.Seed,
// source index, tick index). Per-source draws come from a private PRNG,
// and the population/spike processes shared by all shards are
// *replicated* — each Source advances its own identically-seeded copy —
// so no two Sources ever share mutable state. A Source living in one
// kernel domain can therefore tick concurrently with every other
// domain's Sources, and the whole arrival stream is byte-identical at
// any -j / -domains / worker count.
package agg

import (
	"math/rand"
	"time"

	"dmetabench/internal/workload"
)

// Model describes one aggregate background client population.
type Model struct {
	// Clients is the aggregate population size (sessions that exist);
	// churn decides how many are active at a time.
	Clients int
	// OpsPerClient is each active client's base op rate (ops/s) before
	// diurnal/spike modulation.
	OpsPerClient float64
	// Mix is the operation-class mix of the arrival stream.
	Mix workload.OpMix
	// Zipf is the object popularity law routing load to shards.
	Zipf ZipfPop
	// Diurnal modulates the rate with a sinusoid; zero = flat.
	Diurnal Diurnal
	// Spikes superimposes flash-crowd spikes; zero = none.
	Spikes Spikes
	// Churn opens and closes sessions; zero = everyone always active.
	Churn Churn
	// Tick is the batching interval of the arrival process.
	Tick time.Duration
	// Seed roots every PRNG below.
	Seed int64
}

// Demand is one tick's arrivals for one Source, by operation class.
type Demand struct {
	Getattr int64
	Lookup  int64
	Readdir int64
	Create  int64
}

// Total sums the classes.
func (d Demand) Total() int64 { return d.Getattr + d.Lookup + d.Readdir + d.Create }

// Source is the arrival process of one (shard, lane): an independent
// PRNG stream carrying weight/lanes of the shard's Zipf mass. It is not
// safe for concurrent use, but distinct Sources are independent.
type Source struct {
	weight float64 // fraction of the population's rate this source carries
	mix    workload.OpMix
	perSec float64 // OpsPerClient
	tick   float64 // Tick in seconds
	diur   Diurnal
	step   time.Duration
	rng    *rand.Rand
	pop    *population // replicated across sources (identical seed)
	spikes *spikeTrain // replicated across sources (identical seed)
	next   int64       // next tick index to draw
}

// splitmix64 decorrelates derived seeds; adjacent int64 seeds fed to
// math/rand produce visibly correlated low bits.
func splitmix64(x int64) int64 {
	z := uint64(x) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewSources compiles m into shards×lanes Sources: source shard*lanes+l
// carries 1/lanes of the Zipf mass route sends to that shard. route maps
// a popularity-ranked object index (0 = most popular) to its shard —
// callers pass the file system's own placement so the analytic load
// lands where real requests for those objects would.
func NewSources(m Model, shards, lanes int, route func(obj int) int) []*Source {
	if lanes < 1 {
		lanes = 1
	}
	weights := m.Zipf.ShardWeights(shards, route)
	mix := m.Mix.Normalized()
	out := make([]*Source, 0, shards*lanes)
	for s := 0; s < shards; s++ {
		for l := 0; l < lanes; l++ {
			idx := s*lanes + l
			out = append(out, &Source{
				weight: weights[s] / float64(lanes),
				mix:    mix,
				perSec: m.OpsPerClient,
				tick:   m.Tick.Seconds(),
				diur:   m.Diurnal,
				step:   m.Tick,
				rng:    rand.New(rand.NewSource(splitmix64(m.Seed + int64(idx)))),
				pop:    newPopulation(m.Clients, m.Churn, splitmix64(m.Seed-1)),
				spikes: newSpikeTrain(m.Spikes, splitmix64(m.Seed-2)),
			})
		}
	}
	return out
}

// Tick draws the arrivals of tick index i (the interval starting at
// i*Model.Tick). Indices must be requested in nondecreasing order;
// skipped indices are drawn and discarded so the stream stays a pure
// function of the index regardless of the caller's pacing.
func (s *Source) Tick(i int64) Demand {
	var d Demand
	for s.next <= i {
		t := time.Duration(s.next) * s.step
		active := s.pop.at(s.next)
		rate := float64(active) * s.perSec * s.diur.At(t) * s.spikes.at(t)
		mean := rate * s.tick * s.weight
		d = Demand{
			Getattr: poisson(s.rng, mean*s.mix.Getattr),
			Lookup:  poisson(s.rng, mean*s.mix.Lookup),
			Readdir: poisson(s.rng, mean*s.mix.Readdir),
			Create:  poisson(s.rng, mean*s.mix.Create),
		}
		s.next++
	}
	return d
}
