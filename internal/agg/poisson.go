package agg

import (
	"math"
	"math/rand"
)

// poissonNormalCutover is the mean above which the sampler switches from
// Knuth's exact product method (cost linear in the mean) to the rounded
// normal approximation (constant cost, relative error < 1% of sigma at
// this size).
const poissonNormalCutover = 64

// poisson draws one Poisson(mean) variate from rng. Small means use
// Knuth's product method exactly; large means use the normal
// approximation N(mean, mean) rounded and clamped at zero — at a mean of
// 64+ the skew correction is below the batching noise the simulation can
// observe. Both branches draw from rng only, so the sequence is a pure
// function of the PRNG state.
func poisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean < poissonNormalCutover {
		l := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := mean + math.Sqrt(mean)*rng.NormFloat64()
	if n < 0.5 {
		return 0
	}
	return int64(n + 0.5)
}
