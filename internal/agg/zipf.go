package agg

import "math"

// ZipfPop is a Zipf-Mandelbrot object popularity law: object i (ranked
// by popularity, 0 = hottest) receives mass proportional to 1/(V+i)^S
// over N objects. S=0 degrades to uniform; larger S concentrates the
// head. This is the same law core.ZipfDirFiles draws directories from,
// applied analytically: instead of sampling objects we integrate the pmf
// into per-shard routing weights once.
type ZipfPop struct {
	S float64
	V float64
	N int
}

// pmf returns the normalized probability mass of every object rank.
func (z ZipfPop) pmf() []float64 {
	n := z.N
	if n < 1 {
		n = 1
	}
	v := z.V
	if v < 1 {
		v = 1
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(v+float64(i), z.S)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ShardWeights folds the pmf through route: weights[s] is the fraction
// of all arrivals whose object lives on shard s. The weights sum to one.
func (z ZipfPop) ShardWeights(shards int, route func(obj int) int) []float64 {
	weights := make([]float64, shards)
	for i, p := range z.pmf() {
		s := route(i)
		if s < 0 || s >= shards {
			s = 0
		}
		weights[s] += p
	}
	return weights
}
