package agg

import (
	"math/rand"
	"time"
)

// Churn is an open/close session process: sessions last SessionMean on
// average (exponential departures), and arrivals run at the rate that
// keeps ActiveFrac of the population active in steady state. A zero
// value keeps every client active all the time.
type Churn struct {
	ActiveFrac  float64
	SessionMean time.Duration
	// Tick is the churn process's own batching step (defaults to the
	// model tick via newPopulation's caller passing it through at).
	Tick time.Duration
}

// population is the seeded realization of a Churn process over Clients
// sessions: a birth-death chain advanced one tick at a time. Every
// Source advances its own identically-seeded copy, so all shards see
// the same active-client count without sharing state.
type population struct {
	clients int
	target  float64 // steady-state active count
	depart  float64 // per-tick departure probability of one session
	rng     *rand.Rand
	active  int64
	next    int64
	live    bool
}

func newPopulation(clients int, c Churn, seed int64) *population {
	p := &population{clients: clients, active: int64(clients), rng: rand.New(rand.NewSource(seed))}
	if c.SessionMean > 0 && c.ActiveFrac > 0 && c.ActiveFrac < 1 && c.Tick > 0 {
		p.live = true
		p.target = c.ActiveFrac * float64(clients)
		p.depart = float64(c.Tick) / float64(c.SessionMean)
		if p.depart > 1 {
			p.depart = 1
		}
		p.active = int64(p.target + 0.5)
	}
	return p
}

// at returns the active session count for tick index i, advancing the
// chain through any skipped indices so the count stays a pure function
// of the index.
func (p *population) at(i int64) int64 {
	if !p.live {
		return p.active
	}
	for p.next <= i {
		joins := poisson(p.rng, p.target*p.depart)
		leaves := poisson(p.rng, float64(p.active)*p.depart)
		p.active += joins - leaves
		if p.active < 0 {
			p.active = 0
		}
		if p.active > int64(p.clients) {
			p.active = int64(p.clients)
		}
		p.next++
	}
	return p.active
}
