package agg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"dmetabench/internal/workload"
)

// pinModel is the fixed configuration of the draw-sequence pins: every
// stochastic dimension of the model is on (Zipf popularity, diurnal
// modulation, flash spikes, session churn), so the pinned sequences
// cover the full draw order.
func pinModel() Model {
	return Model{
		Clients:      100_000,
		OpsPerClient: 0.5,
		Mix:          workload.DefaultMetaMix(),
		Zipf:         ZipfPop{S: 1.2, V: 1, N: 32},
		Diurnal:      Diurnal{Amplitude: 0.5, Period: time.Minute},
		Spikes:       Spikes{MeanInterval: 10 * time.Second, Peak: 2, Decay: time.Second},
		Churn:        Churn{ActiveFrac: 0.5, SessionMean: 20 * time.Second, Tick: time.Second},
		Tick:         time.Second,
		Seed:         42,
	}
}

// TestPoissonDrawSequence pins the exact sampler output on both sides
// of the Knuth/normal cutover. Any change to the draw order or the
// sampler itself breaks every seeded experiment, so it must be
// deliberate — this test is the tripwire.
func TestPoissonDrawSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := map[float64][]int64{
		0.5: {0, 2, 0, 1, 0},
		3:   {1, 3, 2, 2, 2},
		100: {97, 119, 111, 90, 110},
	}
	for _, mean := range []float64{0.5, 3, 100} {
		for i, w := range want[mean] {
			if got := poisson(rng, mean); got != w {
				t.Errorf("poisson(mean=%v) draw %d = %d, want %d", mean, i, got, w)
			}
		}
	}
}

// TestPoissonEdgeCases: non-positive means draw nothing and consume no
// randomness.
func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(1))
	if got := poisson(rng, 0); got != 0 {
		t.Errorf("poisson(0) = %d, want 0", got)
	}
	if got := poisson(rng, -1); got != 0 {
		t.Errorf("poisson(-1) = %d, want 0", got)
	}
	if after := rng.Int63(); after != before {
		t.Error("poisson with non-positive mean consumed randomness")
	}
}

// TestZipfShardWeights pins the analytic per-shard popularity mass and
// checks its invariants: weights form a distribution, and the shard
// holding the Zipf head carries the most mass.
func TestZipfShardWeights(t *testing.T) {
	w := ZipfPop{S: 1.1, V: 1, N: 8}.ShardWeights(3, func(obj int) int { return obj % 3 })
	want := []float64{0.531641726395, 0.293970753915, 0.174387519690}
	var sum float64
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Errorf("weight[%d] = %.12f, want %.12f", i, w[i], want[i])
		}
		sum += w[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("weights not ordered by Zipf head: %v", w)
	}
}

// TestSourceDrawSequence pins the exact per-tick demand of two sources
// of the pin model — the first lane of shard 0 and the last lane of
// shard 1 — exactly like the recordClient pin of the per-client Zipf
// workload: the committed experiment corpus is downstream of these
// numbers.
func TestSourceDrawSequence(t *testing.T) {
	srcs := NewSources(pinModel(), 2, 2, func(obj int) int { return obj % 2 })
	if len(srcs) != 4 {
		t.Fatalf("NewSources built %d sources, want 4", len(srcs))
	}
	want := map[int][]Demand{
		0: {
			{4411, 2121, 726, 467},
			{4691, 2151, 732, 512},
			{4941, 2279, 757, 490},
			{5119, 2311, 744, 532},
			{5360, 2478, 784, 543},
			{5559, 2560, 829, 563},
		},
		3: {
			{2876, 1340, 409, 280},
			{2955, 1371, 423, 303},
			{3024, 1418, 459, 306},
			{3331, 1445, 475, 325},
			{3279, 1494, 495, 331},
			{3510, 1664, 555, 392},
		},
	}
	for _, idx := range []int{0, 3} {
		for i, w := range want[idx] {
			got := srcs[idx].Tick(int64(i))
			if got != w {
				t.Errorf("source %d tick %d = %+v, want %+v", idx, i, got, w)
			}
		}
	}
}

// TestSourceTickSkipPurity is the index-purity property behind shed
// accounting: jumping straight to tick i yields exactly the same demand
// as stepping through every tick, because skipped indices advance the
// stream identically.
func TestSourceTickSkipPurity(t *testing.T) {
	mk := func() []*Source {
		return NewSources(pinModel(), 2, 2, func(obj int) int { return obj % 2 })
	}
	stepped := mk()
	var at7 Demand
	for i := int64(0); i <= 7; i++ {
		at7 = stepped[1].Tick(i)
	}
	jumped := mk()
	if got := jumped[1].Tick(7); got != at7 {
		t.Errorf("Tick(7) after skip = %+v, want stepped value %+v", got, at7)
	}
	// A stale index draws nothing: the stream only moves forward.
	if got := jumped[1].Tick(3); got != (Demand{}) {
		t.Errorf("stale Tick(3) = %+v, want zero demand", got)
	}
}

// TestSourcesReplicatedProcesses verifies the shared-process contract:
// population churn and the spike train are replicated with identical
// seeds into every source, so all sources see the same active-client
// count and the same spike onsets — there is no cross-domain state to
// share.
func TestSourcesReplicatedProcesses(t *testing.T) {
	srcs := NewSources(pinModel(), 2, 2, func(obj int) int { return obj % 2 })
	for i := int64(0); i < 50; i++ {
		a := srcs[0].pop.at(i)
		for j := 1; j < len(srcs); j++ {
			if b := srcs[j].pop.at(i); b != a {
				t.Fatalf("tick %d: source %d sees %d active clients, source 0 sees %d", i, j, b, a)
			}
		}
		ts := time.Duration(i) * time.Second
		s := srcs[0].spikes.at(ts)
		for j := 1; j < len(srcs); j++ {
			if v := srcs[j].spikes.at(ts); v != s {
				t.Fatalf("tick %d: source %d spike factor %v, source 0 %v", i, j, v, s)
			}
		}
	}
}

// TestSourceSeedSensitivity: different model seeds must yield different
// draw sequences (the whole point of seeding), while identical seeds
// are byte-identical.
func TestSourceSeedSensitivity(t *testing.T) {
	m := pinModel()
	a := NewSources(m, 2, 2, func(obj int) int { return obj % 2 })
	b := NewSources(m, 2, 2, func(obj int) int { return obj % 2 })
	m2 := m
	m2.Seed = 43
	c := NewSources(m2, 2, 2, func(obj int) int { return obj % 2 })
	same, diff := true, false
	for i := int64(0); i < 20; i++ {
		da, db, dc := a[0].Tick(i), b[0].Tick(i), c[0].Tick(i)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Error("identically-seeded sources diverged")
	}
	if !diff {
		t.Error("differently-seeded sources drew identical sequences")
	}
}

// TestDemandTotal covers the class sum used by shed accounting.
func TestDemandTotal(t *testing.T) {
	d := Demand{Getattr: 1, Lookup: 2, Readdir: 3, Create: 4}
	if d.Total() != 10 {
		t.Errorf("Total = %d, want 10", d.Total())
	}
	if (Demand{}).Total() != 0 {
		t.Errorf("zero demand Total = %d", (Demand{}).Total())
	}
}

// TestSplitmix64 pins the seed-derivation mixer: distinct inputs map to
// distinct, stable outputs (sources and replicated processes derive
// their streams from it).
func TestSplitmix64(t *testing.T) {
	seen := map[int64]int64{}
	for i := int64(-4); i < 4; i++ {
		v := splitmix64(i)
		for prev, pv := range seen {
			if pv == v {
				t.Errorf("splitmix64(%d) == splitmix64(%d) == %d", i, prev, v)
			}
		}
		seen[i] = v
		if splitmix64(i) != v {
			t.Errorf("splitmix64(%d) not stable", i)
		}
	}
}

// ExampleNewSources documents the lane indexing contract.
func ExampleNewSources() {
	m := Model{Clients: 1000, OpsPerClient: 1, Tick: time.Second, Seed: 1}
	srcs := NewSources(m, 2, 3, func(obj int) int { return obj % 2 })
	fmt.Println(len(srcs)) // shard*lanes+lane
	// Output: 6
}
