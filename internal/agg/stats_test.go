package agg

// Statistical property tests: beyond the exact draw-sequence pins of
// agg_test.go, these check that the seeded generators actually have the
// *shapes* the model advertises — Poisson counts with the right mass
// function, a sinusoid that averages out over a day, exponential spike
// gaps, a stationary churn process. Everything is seeded, so the
// assertions are deterministic; the tolerance bands exist because the
// estimators are finite-sample, not because the values vary.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dmetabench/internal/workload"
)

// TestPoissonSampleMean checks the first moment on both sides of the
// Knuth/normal cutover.
func TestPoissonSampleMean(t *testing.T) {
	for _, mean := range []float64{3, 400} {
		rng := rand.New(rand.NewSource(9))
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.01 {
			t.Errorf("sample mean for Poisson(%v) = %.3f, want within 1%%", mean, got)
		}
	}
}

// TestPoissonChiSquared bins 20k draws of Poisson(4) against the exact
// probability mass function. The statistic is deterministic (seeded);
// the bound is the chi-squared 0.999 quantile at 12 degrees of freedom,
// so a sampler regression that deforms the distribution — not just the
// sequence — fails loudly.
func TestPoissonChiSquared(t *testing.T) {
	const mean = 4.0
	const n = 20000
	const bins = 12 // counts 0..10 plus a >=11 tail bin
	rng := rand.New(rand.NewSource(10))
	obs := make([]float64, bins)
	for i := 0; i < n; i++ {
		k := poisson(rng, mean)
		if k >= bins-1 {
			k = bins - 1
		}
		obs[k]++
	}
	exp := make([]float64, bins)
	pmf := math.Exp(-mean) // P(0)
	cum := 0.0
	for k := 0; k < bins-1; k++ {
		exp[k] = n * pmf
		cum += pmf
		pmf *= mean / float64(k+1)
	}
	exp[bins-1] = n * (1 - cum)
	var chi2 float64
	for k := 0; k < bins; k++ {
		d := obs[k] - exp[k]
		chi2 += d * d / exp[k]
	}
	// chi-squared 0.999 quantile, 11 df ~= 31.3.
	if chi2 > 31.3 {
		t.Errorf("chi-squared = %.2f over %d bins, exceeds 31.3; observed %v", chi2, bins, obs)
	}
}

// TestPoissonNormalBranchVariance checks the second moment of the
// normal-approximation branch (a Poisson's variance equals its mean).
func TestPoissonNormalBranchVariance(t *testing.T) {
	const mean = 400.0
	const n = 20000
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = float64(poisson(rng, mean))
		sum += xs[i]
	}
	m := sum / n
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	v := ss / n
	if math.Abs(v-mean)/mean > 0.05 {
		t.Errorf("sample variance = %.1f, want %v within 5%%", v, mean)
	}
}

// TestDiurnalShape pins the sinusoid's anchor points and its defining
// property: the modulation averages to 1 over a full cycle, so the
// daily op volume is Amplitude-independent.
func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Amplitude: 0.6, Period: 24 * time.Hour}
	if got := d.At(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("At(0) = %v, want 1", got)
	}
	if got := d.At(6 * time.Hour); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("peak At(P/4) = %v, want 1.6", got)
	}
	if got := d.At(18 * time.Hour); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("trough At(3P/4) = %v, want 0.4", got)
	}
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += d.At(time.Duration(i) * 24 * time.Hour / n)
	}
	if got := sum / n; math.Abs(got-1) > 1e-3 {
		t.Errorf("cycle mean = %v, want 1", got)
	}
	if got := (Diurnal{}).At(5 * time.Hour); got != 1 {
		t.Errorf("zero-value Diurnal At = %v, want 1", got)
	}
	// An amplitude above 1 floors at zero instead of going negative.
	deep := Diurnal{Amplitude: 2, Period: time.Hour}
	if got := deep.At(45 * time.Minute); got != 0 {
		t.Errorf("over-amplitude trough = %v, want 0", got)
	}
}

// TestSpikeGapDistribution checks the onset process: gaps are floored
// at one decay constant and average the configured MeanInterval within
// a finite-sample band.
func TestSpikeGapDistribution(t *testing.T) {
	cfg := Spikes{MeanInterval: 10 * time.Second, Peak: 2, Decay: time.Second}
	s := newSpikeTrain(cfg, 13)
	const n = 10000
	var sum time.Duration
	for i := 0; i < n; i++ {
		g := s.gap()
		if g < cfg.Decay {
			t.Fatalf("gap %v below the decay floor %v", g, cfg.Decay)
		}
		sum += g
	}
	mean := sum / n
	lo, hi := 9*time.Second, 11500*time.Millisecond
	if mean < lo || mean > hi {
		t.Errorf("mean gap = %v, want within [%v, %v]", mean, lo, hi)
	}
}

// TestSpikeTrainShape walks one train through time: factor 1 before the
// first onset, exactly 1+Peak at an onset, exponential decay after it,
// and never outside [1, 1+Peak].
func TestSpikeTrainShape(t *testing.T) {
	cfg := Spikes{MeanInterval: 10 * time.Second, Peak: 2, Decay: time.Second}
	s := newSpikeTrain(cfg, 14)
	onset := s.next
	if got := s.at(onset / 2); got != 1 {
		t.Errorf("factor before first onset = %v, want 1", got)
	}
	if got := s.at(onset); math.Abs(got-3) > 1e-12 {
		t.Errorf("factor at onset = %v, want 1+Peak = 3", got)
	}
	want := 1 + 2*math.Exp(-0.5)
	if got := s.at(onset + cfg.Decay/2); math.Abs(got-want) > 1e-9 {
		t.Errorf("factor half a decay after onset = %v, want %v", got, want)
	}
	r := newSpikeTrain(cfg, 15)
	for ts := time.Duration(0); ts < 2000*time.Second; ts += 100 * time.Millisecond {
		f := r.at(ts)
		if f < 1 || f > 3 {
			t.Fatalf("factor %v at %v outside [1, 1+Peak]", f, ts)
		}
	}
	dead := newSpikeTrain(Spikes{}, 16)
	if got := dead.at(time.Hour); got != 1 {
		t.Errorf("zero-value Spikes factor = %v, want 1", got)
	}
}

// TestChurnStationarity runs the birth-death chain for 20k ticks: the
// active count must hover around ActiveFrac*Clients (the process is
// calibrated to that fixed point), stay within the population bounds,
// and actually move (it is a stochastic process, not a constant).
func TestChurnStationarity(t *testing.T) {
	const clients = 10000
	c := Churn{ActiveFrac: 0.5, SessionMean: 20 * time.Second, Tick: time.Second}
	p := newPopulation(clients, c, 17)
	const n = 20000
	var sum float64
	minA, maxA := int64(clients), int64(0)
	for i := int64(0); i < n; i++ {
		a := p.at(i)
		if a < 0 || a > clients {
			t.Fatalf("active = %d outside [0, %d]", a, clients)
		}
		sum += float64(a)
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	mean := sum / n
	if math.Abs(mean-5000)/5000 > 0.05 {
		t.Errorf("mean active = %.1f, want 5000 within 5%%", mean)
	}
	if minA == maxA {
		t.Error("churn process never moved")
	}
	// Zero churn keeps everyone active.
	flat := newPopulation(clients, Churn{}, 18)
	if got := flat.at(1000); got != clients {
		t.Errorf("zero-value Churn active = %d, want %d", got, clients)
	}
}

// TestSourceMeanRate closes the loop on the whole pipeline: with flat
// modulation and no churn, a single full-weight source must deliver
// Clients*OpsPerClient operations per second within 1%, split across
// classes in the configured mix within 2 points.
func TestSourceMeanRate(t *testing.T) {
	m := Model{
		Clients:      10000,
		OpsPerClient: 2,
		Mix:          workload.DefaultMetaMix(),
		Zipf:         ZipfPop{S: 1.1, V: 1, N: 16},
		Tick:         time.Second,
		Seed:         19,
	}
	srcs := NewSources(m, 1, 1, func(int) int { return 0 })
	const ticks = 3000
	var total Demand
	for i := int64(0); i < ticks; i++ {
		d := srcs[0].Tick(i)
		total.Getattr += d.Getattr
		total.Lookup += d.Lookup
		total.Readdir += d.Readdir
		total.Create += d.Create
	}
	wantTotal := float64(m.Clients) * m.OpsPerClient * ticks
	if got := float64(total.Total()); math.Abs(got-wantTotal)/wantTotal > 0.01 {
		t.Errorf("total ops = %.0f, want %.0f within 1%%", got, wantTotal)
	}
	mix := m.Mix.Normalized()
	fracs := []struct {
		name string
		got  int64
		want float64
	}{
		{"getattr", total.Getattr, mix.Getattr},
		{"lookup", total.Lookup, mix.Lookup},
		{"readdir", total.Readdir, mix.Readdir},
		{"create", total.Create, mix.Create},
	}
	for _, f := range fracs {
		got := float64(f.got) / float64(total.Total())
		if math.Abs(got-f.want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want %.3f within 0.02", f.name, got, f.want)
		}
	}
}
