package agg

import (
	"math"
	"math/rand"
	"time"
)

// Diurnal is a sinusoidal rate modulation: At(t) swings between
// 1-Amplitude (trough) and 1+Amplitude (peak) over Period, starting at
// Phase (radians) into the cycle. A zero value is flat (factor 1).
type Diurnal struct {
	Amplitude float64
	Period    time.Duration
	Phase     float64
}

// At returns the rate factor at virtual time t, floored at zero so an
// amplitude above 1 models a service that goes fully idle off-peak.
func (d Diurnal) At(t time.Duration) float64 {
	if d.Amplitude == 0 || d.Period <= 0 {
		return 1
	}
	f := 1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(d.Period)+d.Phase)
	if f < 0 {
		return 0
	}
	return f
}

// Spikes is a flash-crowd process: spike onsets arrive with
// exponentially distributed gaps of mean MeanInterval, each multiplying
// the rate by 1+Peak at onset and decaying exponentially with time
// constant Decay. A zero value produces no spikes.
type Spikes struct {
	MeanInterval time.Duration
	Peak         float64
	Decay        time.Duration
}

// spikeTrain is the seeded realization of a Spikes process. Every
// Source advances its own identically-seeded copy, so the train is
// shared by value, never by reference (the determinism contract).
type spikeTrain struct {
	cfg   Spikes
	rng   *rand.Rand
	start time.Duration // onset of the most recent spike
	next  time.Duration // onset of the following spike
	live  bool
}

func newSpikeTrain(cfg Spikes, seed int64) *spikeTrain {
	s := &spikeTrain{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.MeanInterval > 0 && cfg.Peak > 0 && cfg.Decay > 0 {
		s.live = true
		s.next = s.gap() // first onset: one exponential gap from t=0
	}
	return s
}

func (s *spikeTrain) gap() time.Duration {
	g := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.MeanInterval))
	// Floor the gap at one decay constant so consecutive spikes stay
	// distinguishable events rather than merging into a level shift.
	if g < s.cfg.Decay {
		g = s.cfg.Decay
	}
	return g
}

// at returns the rate factor at time t. Calls must not go backwards in
// time (Sources tick monotonically).
func (s *spikeTrain) at(t time.Duration) float64 {
	if !s.live {
		return 1
	}
	for t >= s.next {
		s.start = s.next
		s.next = s.start + s.gap()
	}
	if s.start == 0 && s.next > t {
		return 1 // before the first onset
	}
	return 1 + s.cfg.Peak*math.Exp(-float64(t-s.start)/float64(s.cfg.Decay))
}
