// Package results holds benchmark result data and implements the
// preprocessing of §3.3.9: time-interval traces per process (Listing
// 3.3), per-interval summaries with the coefficient of variation of
// per-process performance (Listing 3.4), and the stonewall / fixed-count
// / wall-clock performance averages (Listing 3.5).
package results

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Trace is the time-interval log of one process: Done[i] is the
// cumulative number of operations completed at time (i+1)*Interval after
// the start of the doBench phase.
type Trace struct {
	Host       string
	Op         string
	Proc       int
	Done       []int64
	Final      int64
	FinishedAt time.Duration
}

// Measurement is one (operation, nodes, processes-per-node) run.
type Measurement struct {
	Op       string
	Nodes    int
	PPN      int
	Interval time.Duration
	Traces   []Trace
	// Errors records per-process failures ("" = ok), indexed by rank.
	Errors []string
	// Latencies, when latency collection is enabled, holds one
	// histogram per client operation kind observed during the doBench
	// phase, aggregated over all processes.
	Latencies map[string]*Histogram
	// Series, when set, is the long-horizon per-interval series of a
	// stage measurement (series.go): throughput, COV and latency
	// percentiles per interval. Nil for classic measurements, so their
	// serialized form is unchanged.
	Series []IntervalStat
}

// Procs returns the number of participating processes.
func (m *Measurement) Procs() int { return len(m.Traces) }

// Ticks returns the common trace length.
func (m *Measurement) Ticks() int {
	n := 0
	for _, t := range m.Traces {
		if len(t.Done) > n {
			n = len(t.Done)
		}
	}
	return n
}

// TotalOps sums the final operation counts.
func (m *Measurement) TotalOps() int64 {
	var n int64
	for _, t := range m.Traces {
		n += t.Final
	}
	return n
}

// Failed reports whether any process recorded an error.
func (m *Measurement) Failed() bool {
	for _, e := range m.Errors {
		if e != "" {
			return true
		}
	}
	return false
}

// doneAt returns trace t's cumulative count at tick i (clamped).
func doneAt(t *Trace, i int) int64 {
	if len(t.Done) == 0 {
		return 0
	}
	if i < 0 {
		return 0
	}
	if i >= len(t.Done) {
		return t.Done[len(t.Done)-1]
	}
	return t.Done[i]
}

// SummaryRow is one line of the preprocessed summary (Listing 3.4).
type SummaryRow struct {
	T          time.Duration // end of the interval
	TotalDone  int64         // cumulative operations, all processes
	Throughput float64       // ops/s across this interval
	StdDev     float64       // std dev of per-process ops/s in this interval
	COV        float64       // StdDev / mean of per-process ops/s
}

// Summary computes the per-interval totals, throughput and COV.
func (m *Measurement) Summary() []SummaryRow {
	n := m.Ticks()
	rows := make([]SummaryRow, 0, n)
	secs := m.Interval.Seconds()
	for i := 0; i < n; i++ {
		var total, prev int64
		rates := make([]float64, 0, len(m.Traces))
		for ti := range m.Traces {
			t := &m.Traces[ti]
			cur := doneAt(t, i)
			before := doneAt(t, i-1)
			total += cur
			prev += before
			rates = append(rates, float64(cur-before)/secs)
		}
		row := SummaryRow{
			T:          time.Duration(i+1) * m.Interval,
			TotalDone:  total,
			Throughput: float64(total-prev) / secs,
		}
		row.StdDev, row.COV = stddevCOV(rates)
		rows = append(rows, row)
	}
	return rows
}

func stddevCOV(xs []float64) (sd, cov float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(len(xs)))
	if mean > 0 {
		cov = sd / mean
	}
	return sd, cov
}

// Averages carries the compressed performance numbers of Listing 3.5.
type Averages struct {
	// Stonewall is the total throughput up to the moment the first
	// process finished (§3.2.5).
	Stonewall   float64
	StonewallAt time.Duration
	// WallClock is total operations over the full runtime.
	WallClock float64
	Runtime   time.Duration
	// FixedN maps an operation count to the average throughput up to
	// the first interval where that many operations had completed
	// ("strong scaling" view); 0 when never reached.
	FixedN map[int64]float64
}

// Averages computes the summary numbers; fixedN lists the operation
// counts for the strong-scaling averages.
func (m *Measurement) Averages(fixedN ...int64) Averages {
	a := Averages{FixedN: make(map[int64]float64)}
	n := m.Ticks()
	if n == 0 {
		return a
	}
	// Stonewall tick: first tick at which some finished process had
	// reached its final count.
	stoneTick := -1
	for i := 0; i < n && stoneTick < 0; i++ {
		for ti := range m.Traces {
			t := &m.Traces[ti]
			if t.Final > 0 && doneAt(t, i) >= t.Final {
				stoneTick = i
				break
			}
		}
	}
	if stoneTick < 0 {
		stoneTick = n - 1
	}
	var atStone int64
	for ti := range m.Traces {
		atStone += doneAt(&m.Traces[ti], stoneTick)
	}
	a.StonewallAt = time.Duration(stoneTick+1) * m.Interval
	a.Stonewall = float64(atStone) / a.StonewallAt.Seconds()

	var runtime time.Duration
	for _, t := range m.Traces {
		if t.FinishedAt > runtime {
			runtime = t.FinishedAt
		}
	}
	if runtime == 0 {
		runtime = time.Duration(n) * m.Interval
	}
	a.Runtime = runtime
	a.WallClock = float64(m.TotalOps()) / runtime.Seconds()

	for _, want := range fixedN {
		for i := 0; i < n; i++ {
			var total int64
			for ti := range m.Traces {
				total += doneAt(&m.Traces[ti], i)
			}
			if total >= want {
				a.FixedN[want] = float64(want) / (time.Duration(i+1) * m.Interval).Seconds()
				break
			}
		}
	}
	return a
}

// Set is one result set: everything produced by a single benchmark run
// (§3.3.9), across operations and node/process combinations.
type Set struct {
	Label        string
	FS           string
	Interval     time.Duration
	Measurements []*Measurement
	// Environment holds the profiling key/value pairs captured before
	// the run (§3.2.6).
	Environment map[string]string
}

// NewSet returns an empty result set.
func NewSet(label, fsName string, interval time.Duration) *Set {
	return &Set{Label: label, FS: fsName, Interval: interval,
		Environment: make(map[string]string)}
}

// Add appends a measurement.
func (s *Set) Add(m *Measurement) { s.Measurements = append(s.Measurements, m) }

// Merge appends measurements in slice order, skipping nil slots. This
// is the deterministic-merge step of parallel cell execution: cells
// complete in arbitrary real-time order but deposit into
// index-addressed slots, and the slot order — the serial plan order —
// is what defines the set, so the merged set is identical at any
// worker count.
func (s *Set) Merge(ms []*Measurement) {
	for _, m := range ms {
		if m != nil {
			s.Measurements = append(s.Measurements, m)
		}
	}
}

// Find returns the measurement for (op, nodes, ppn), or nil.
func (s *Set) Find(op string, nodes, ppn int) *Measurement {
	for _, m := range s.Measurements {
		if m.Op == op && m.Nodes == nodes && m.PPN == ppn {
			return m
		}
	}
	return nil
}

// Ops returns the distinct operation names in insertion order.
func (s *Set) Ops() []string {
	var ops []string
	seen := map[string]bool{}
	for _, m := range s.Measurements {
		if !seen[m.Op] {
			seen[m.Op] = true
			ops = append(ops, m.Op)
		}
	}
	return ops
}

// ScalePoint is one point of a scaling series.
type ScalePoint struct {
	Nodes, PPN, Procs int
	Stonewall         float64
}

// ScaleSeries returns the stonewall averages of one operation over all
// measured combinations, ordered by (ppn, nodes).
func (s *Set) ScaleSeries(op string) []ScalePoint {
	var pts []ScalePoint
	for _, m := range s.Measurements {
		if m.Op != op {
			continue
		}
		a := m.Averages()
		pts = append(pts, ScalePoint{Nodes: m.Nodes, PPN: m.PPN,
			Procs: m.Procs(), Stonewall: a.Stonewall})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].PPN != pts[j].PPN {
			return pts[i].PPN < pts[j].PPN
		}
		return pts[i].Nodes < pts[j].Nodes
	})
	return pts
}

// WriteTrace emits the raw per-process records in the TSV layout of
// Listing 3.3.
func (m *Measurement) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Hostname\tOperation\tProcessNo\tTimestamp\tOperationsDone")
	for _, t := range m.Traces {
		for i, done := range t.Done {
			ts := time.Duration(i+1) * m.Interval
			fmt.Fprintf(bw, "%s\t%s\t%d\t%.1f\t%d\n", t.Host, t.Op, t.Proc, ts.Seconds(), done)
		}
	}
	return bw.Flush()
}

// WriteSummary emits the preprocessed rows in the layout of Listing 3.4.
func (m *Measurement) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range m.Summary() {
		fmt.Fprintf(bw, "%s\t%d\t%d\t%.1f\t%d\t%.1f\t%.3f\n",
			m.Op, m.Nodes, m.Procs(), r.T.Seconds(), r.TotalDone, r.StdDev, r.COV)
	}
	return bw.Flush()
}

// TraceFileName returns the canonical result file name
// (results-<op>-<nodes>-<procs>.tsv, §3.3.9).
func (m *Measurement) TraceFileName() string {
	return fmt.Sprintf("results-%s-%d-%d.tsv", m.Op, m.Nodes, m.Procs())
}

// ParseTrace reads a trace TSV (as written by WriteTrace) back into a
// measurement with the given configuration.
func ParseTrace(r io.Reader, nodes, ppn int, interval time.Duration) (*Measurement, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	m := &Measurement{Nodes: nodes, PPN: ppn, Interval: interval}
	byProc := map[int]*Trace{}
	var order []int
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "Hostname") {
				continue
			}
		}
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			return nil, fmt.Errorf("results: malformed line %q", line)
		}
		proc, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("results: bad process number %q", f[2])
		}
		done, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("results: bad count %q", f[4])
		}
		t, ok := byProc[proc]
		if !ok {
			t = &Trace{Host: f[0], Op: f[1], Proc: proc}
			byProc[proc] = t
			order = append(order, proc)
		}
		if m.Op == "" {
			m.Op = f[1]
		}
		t.Done = append(t.Done, done)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Ints(order)
	for _, p := range order {
		t := byProc[p]
		if n := len(t.Done); n > 0 {
			t.Final = t.Done[n-1]
			t.FinishedAt = time.Duration(n) * interval
		}
		m.Traces = append(m.Traces, *t)
	}
	m.Errors = make([]string, len(m.Traces))
	return m, nil
}
