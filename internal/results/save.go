package results

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Save writes the result set to dir in the file layout of §3.3.9: one
// results-<op>-<nodes>-<procs>.tsv trace file and one summary-*.tsv per
// measurement, a performance.tsv with the compressed averages (Listing
// 3.5) and an environment.txt with the profiling data.
func (s *Set) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	perf, err := os.Create(filepath.Join(dir, "performance.tsv"))
	if err != nil {
		return err
	}
	defer perf.Close()
	fmt.Fprintln(perf, "Operation\tNodes\tPPN\tProcs\tStonewallOpsPerSec\tWallClockOpsPerSec\tRuntimeSec")
	for _, m := range s.Measurements {
		tf, err := os.Create(filepath.Join(dir, m.TraceFileName()))
		if err != nil {
			return err
		}
		if err := m.WriteTrace(tf); err != nil {
			tf.Close()
			return err
		}
		tf.Close()
		sf, err := os.Create(filepath.Join(dir, "summary-"+strings.TrimPrefix(m.TraceFileName(), "results-")))
		if err != nil {
			return err
		}
		if err := m.WriteSummary(sf); err != nil {
			sf.Close()
			return err
		}
		sf.Close()
		// Interval series only exist for stage measurements; classic
		// measurements write exactly the pre-series file set, so the
		// committed corpus and the determinism byte-diffs are unchanged.
		if len(m.Series) > 0 {
			xf, err := os.Create(filepath.Join(dir, m.SeriesFileName()))
			if err != nil {
				return err
			}
			if err := m.WriteSeries(xf); err != nil {
				xf.Close()
				return err
			}
			xf.Close()
		}
		a := m.Averages()
		fmt.Fprintf(perf, "%s\t%d\t%d\t%d\t%.1f\t%.1f\t%.3f\n",
			m.Op, m.Nodes, m.PPN, m.Procs(), a.Stonewall, a.WallClock, a.Runtime.Seconds())
	}
	env, err := os.Create(filepath.Join(dir, "environment.txt"))
	if err != nil {
		return err
	}
	defer env.Close()
	fmt.Fprintf(env, "label\t%s\nfilesystem\t%s\ninterval\t%s\n", s.Label, s.FS, s.Interval)
	keys := make([]string, 0, len(s.Environment))
	for k := range s.Environment {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(env, "%s\t%s\n", k, s.Environment[k])
	}
	return nil
}

// Load reads a result directory written by Save back into a Set.
func Load(dir string) (*Set, error) {
	envBytes, err := os.ReadFile(filepath.Join(dir, "environment.txt"))
	if err != nil {
		return nil, err
	}
	set := NewSet("", "", 100*time.Millisecond)
	for _, line := range strings.Split(string(envBytes), "\n") {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			continue
		}
		switch parts[0] {
		case "label":
			set.Label = parts[1]
		case "filesystem":
			set.FS = parts[1]
		case "interval":
			if d, err := time.ParseDuration(parts[1]); err == nil {
				set.Interval = d
			}
		default:
			set.Environment[parts[0]] = parts[1]
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "results-") || !strings.HasSuffix(name, ".tsv") {
			continue
		}
		// results-<op>-<nodes>-<procs>.tsv
		parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "results-"), ".tsv"), "-")
		if len(parts) < 3 {
			continue
		}
		nodes, err1 := strconv.Atoi(parts[len(parts)-2])
		procs, err2 := strconv.Atoi(parts[len(parts)-1])
		if err1 != nil || err2 != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		ppn := 1
		if nodes > 0 {
			ppn = procs / nodes
			if ppn < 1 {
				ppn = 1
			}
		}
		m, err := ParseTrace(f, nodes, ppn, set.Interval)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		set.Add(m)
	}
	return set, nil
}
