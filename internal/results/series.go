package results

import (
	"bufio"
	"fmt"
	"io"
	"time"
)

// IntervalStat is one interval of a long-horizon stage measurement
// (core.StageRunner): what the perftest-style harness reports per
// minute over hours of virtual time. Ops/Throughput/COV describe the
// foreground probe processes; Aux carries an auxiliary counter delta
// sampled on the same grid (the experiments use it for background
// operations injected by the aggregate arrival process); the
// percentiles come from the interval's own latency histogram, so tail
// behavior is visible per interval instead of averaged away.
type IntervalStat struct {
	T          time.Duration // end of the interval
	Ops        int64         // foreground ops completed in the interval
	Throughput float64       // foreground ops/s across the interval
	COV        float64       // COV of per-probe rates in the interval
	Aux        int64         // auxiliary counter delta (background ops)
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
}

// FillPercentiles extracts the interval's latency percentiles from its
// histogram; a nil or empty histogram leaves them zero (an interval in
// which no foreground op completed).
func (s *IntervalStat) FillPercentiles(h *Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	s.P50 = h.Percentile(0.50)
	s.P99 = h.Percentile(0.99)
	s.P999 = h.Percentile(0.999)
}

// SeriesFileName returns the canonical interval-series file name. The
// prefix is distinct from "results-" so Load's trace scan never
// mistakes a series file for a trace file.
func (m *Measurement) SeriesFileName() string {
	return fmt.Sprintf("series-%s-%d-%d.tsv", m.Op, m.Nodes, m.Procs())
}

// WriteSeries emits the interval series as TSV, one row per interval.
// Latencies are reported in microseconds (the histogram's native
// resolution).
func (m *Measurement) WriteSeries(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Operation\tT\tOps\tOpsPerSec\tCOV\tAuxOps\tP50us\tP99us\tP999us")
	for _, s := range m.Series {
		fmt.Fprintf(bw, "%s\t%.1f\t%d\t%.1f\t%.3f\t%d\t%d\t%d\t%d\n",
			m.Op, s.T.Seconds(), s.Ops, s.Throughput, s.COV, s.Aux,
			s.P50.Microseconds(), s.P99.Microseconds(), s.P999.Microseconds())
	}
	return bw.Flush()
}

// SeriesWindow aggregates the series between from and to (half-open on
// the left, like windowThroughput over summaries): mean foreground and
// aux throughput, the peak and trough of the aux rate, and the worst
// P99 seen. ok is false when the window holds no intervals.
type SeriesWindow struct {
	MeanThroughput float64
	MeanAuxRate    float64
	PeakAuxRate    float64
	TroughAuxRate  float64
	MaxP99         time.Duration
}

// Window computes the series aggregate over (from, to].
func (m *Measurement) Window(from, to time.Duration) (SeriesWindow, bool) {
	var w SeriesWindow
	secs := m.Interval.Seconds()
	n := 0
	for _, s := range m.Series {
		if s.T <= from || s.T > to {
			continue
		}
		aux := float64(s.Aux) / secs
		w.MeanThroughput += s.Throughput
		w.MeanAuxRate += aux
		if n == 0 || aux > w.PeakAuxRate {
			w.PeakAuxRate = aux
		}
		if n == 0 || aux < w.TroughAuxRate {
			w.TroughAuxRate = aux
		}
		if s.P99 > w.MaxP99 {
			w.MaxP99 = s.P99
		}
		n++
	}
	if n == 0 {
		return SeriesWindow{}, false
	}
	w.MeanThroughput /= float64(n)
	w.MeanAuxRate /= float64(n)
	return w, true
}

// AuxCOV is the temporal coefficient of variation of the per-interval
// aux rate over the whole series — the "how bursty was the background
// over the day" number E31 reports.
func (m *Measurement) AuxCOV() float64 {
	rates := make([]float64, 0, len(m.Series))
	secs := m.Interval.Seconds()
	for _, s := range m.Series {
		rates = append(rates, float64(s.Aux)/secs)
	}
	_, cov := stddevCOV(rates)
	return cov
}
