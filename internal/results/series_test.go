package results

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFillPercentilesEdges covers the degenerate histograms an interval
// can produce: no foreground op completed (nil or empty histogram), a
// single sample, and samples sitting exactly on a power-of-two bucket
// edge where the bucket upper bound clamps to the observed max.
func TestFillPercentilesEdges(t *testing.T) {
	var s IntervalStat
	s.FillPercentiles(nil)
	if s.P50 != 0 || s.P99 != 0 || s.P999 != 0 {
		t.Errorf("nil histogram set percentiles: %+v", s)
	}
	s.FillPercentiles(&Histogram{})
	if s.P50 != 0 || s.P99 != 0 || s.P999 != 0 {
		t.Errorf("empty histogram set percentiles: %+v", s)
	}

	one := &Histogram{}
	one.Add(100 * time.Microsecond)
	s.FillPercentiles(one)
	if s.P50 != 100*time.Microsecond || s.P99 != 100*time.Microsecond || s.P999 != 100*time.Microsecond {
		t.Errorf("single-sample percentiles = %v/%v/%v, want the sample itself", s.P50, s.P99, s.P999)
	}

	// 64us is a bucket's lower edge; with every sample there, the bucket
	// upper bound (127.999us) exceeds the observed max and must clamp.
	edge := &Histogram{}
	for i := 0; i < 10; i++ {
		edge.Add(64 * time.Microsecond)
	}
	var e IntervalStat
	e.FillPercentiles(edge)
	if e.P99 != 64*time.Microsecond || e.P999 != 64*time.Microsecond {
		t.Errorf("bucket-edge percentiles = %v/%v, want 64us (clamped to max)", e.P99, e.P999)
	}

	// A heavy body with one tail outlier: p99/p999 resolve to the body's
	// bucket bound, not the outlier.
	mixed := &Histogram{}
	for i := 0; i < 999; i++ {
		mixed.Add(10 * time.Microsecond)
	}
	mixed.Add(5 * time.Millisecond)
	var m IntervalStat
	m.FillPercentiles(mixed)
	if m.P99 >= time.Millisecond {
		t.Errorf("p99 = %v pulled up by a 0.1%% outlier", m.P99)
	}
	if m.P999 >= time.Millisecond {
		t.Errorf("p999 = %v, want the 999th sample's bucket, not the outlier", m.P999)
	}
}

// TestSeriesWindow pins Window's half-open interval semantics and its
// aggregates, including the empty-window and whole-series cases.
func TestSeriesWindow(t *testing.T) {
	m := &Measurement{Op: "stage", Interval: time.Minute}
	if _, ok := m.Window(0, time.Hour); ok {
		t.Error("empty series reported a window")
	}
	m.Series = []IntervalStat{
		{T: 1 * time.Minute, Throughput: 10, Aux: 600, P99: 1 * time.Millisecond},
		{T: 2 * time.Minute, Throughput: 20, Aux: 1200, P99: 4 * time.Millisecond},
		{T: 3 * time.Minute, Throughput: 30, Aux: 300, P99: 2 * time.Millisecond},
	}
	// (1m, 3m] excludes the first interval (half-open on the left).
	w, ok := m.Window(1*time.Minute, 3*time.Minute)
	if !ok {
		t.Fatal("window (1m, 3m] reported no intervals")
	}
	if w.MeanThroughput != 25 {
		t.Errorf("MeanThroughput = %v, want 25", w.MeanThroughput)
	}
	if w.MeanAuxRate != 12.5 { // (1200/60 + 300/60) / 2
		t.Errorf("MeanAuxRate = %v, want 12.5", w.MeanAuxRate)
	}
	if w.PeakAuxRate != 20 || w.TroughAuxRate != 5 {
		t.Errorf("aux peak/trough = %v/%v, want 20/5", w.PeakAuxRate, w.TroughAuxRate)
	}
	if w.MaxP99 != 4*time.Millisecond {
		t.Errorf("MaxP99 = %v, want 4ms", w.MaxP99)
	}
	// The whole series; the trough is now the first interval's rate.
	all, ok := m.Window(0, time.Hour)
	if !ok || all.TroughAuxRate != 5 || all.PeakAuxRate != 20 {
		t.Errorf("whole-series window = %+v, ok=%v", all, ok)
	}
	if _, ok := m.Window(10*time.Minute, 20*time.Minute); ok {
		t.Error("out-of-range window reported intervals")
	}
}

// TestAuxCOV: a flat background has zero temporal COV, a bursty one a
// positive COV, and an empty series is safely zero.
func TestAuxCOV(t *testing.T) {
	m := &Measurement{Op: "stage", Interval: time.Minute}
	if got := m.AuxCOV(); got != 0 {
		t.Errorf("empty series AuxCOV = %v, want 0", got)
	}
	m.Series = []IntervalStat{{Aux: 600}, {Aux: 600}, {Aux: 600}}
	if got := m.AuxCOV(); got != 0 {
		t.Errorf("flat series AuxCOV = %v, want 0", got)
	}
	m.Series = []IntervalStat{{Aux: 300}, {Aux: 900}, {Aux: 300}, {Aux: 900}}
	if got := m.AuxCOV(); got <= 0 {
		t.Errorf("bursty series AuxCOV = %v, want > 0", got)
	}
}

// TestWriteSeriesGolden pins the TSV serialization, including an
// empty interval (no ops, zero percentiles) in the middle.
func TestWriteSeriesGolden(t *testing.T) {
	m := &Measurement{Op: "day", Interval: time.Minute, Series: []IntervalStat{
		{T: 1 * time.Minute, Ops: 120, Throughput: 2, COV: 0.25, Aux: 600,
			P50: 80 * time.Microsecond, P99: 500 * time.Microsecond, P999: time.Millisecond},
		{T: 2 * time.Minute, Ops: 0, Throughput: 0, COV: 0, Aux: 300},
	}}
	var b strings.Builder
	if err := m.WriteSeries(&b); err != nil {
		t.Fatal(err)
	}
	want := "Operation\tT\tOps\tOpsPerSec\tCOV\tAuxOps\tP50us\tP99us\tP999us\n" +
		"day\t60.0\t120\t2.0\t0.250\t600\t80\t500\t1000\n" +
		"day\t120.0\t0\t0.0\t0.000\t300\t0\t0\t0\n"
	if got := b.String(); got != want {
		t.Errorf("series TSV:\n%q\nwant:\n%q", got, want)
	}
}

// TestSaveSeriesFiles pins the file-layout contract: a stage measurement
// writes one extra series-*.tsv, a classic measurement writes none, and
// Load's results-* scan ignores series files entirely — so a directory
// round trip sees exactly the classic measurements.
func TestSaveSeriesFiles(t *testing.T) {
	dir := t.TempDir()
	set := NewSet("test", "sim", time.Minute)
	stage := &Measurement{
		Op: "day", Nodes: 2, PPN: 2, Interval: time.Minute,
		Traces: []Trace{
			{Host: "n0", Op: "day", Proc: 0, Done: []int64{50, 100}, Final: 100, FinishedAt: 2 * time.Minute},
			{Host: "n1", Op: "day", Proc: 1, Done: []int64{40, 90}, Final: 90, FinishedAt: 2 * time.Minute},
		},
		Errors: []string{"", ""},
		Series: []IntervalStat{{T: time.Minute, Ops: 90, Throughput: 1.5, Aux: 600}},
	}
	classic := &Measurement{
		Op: "create", Nodes: 1, PPN: 1, Interval: time.Minute,
		Traces: []Trace{{Host: "n0", Op: "create", Proc: 0, Done: []int64{10}, Final: 10, FinishedAt: time.Minute}},
		Errors: []string{""},
	}
	set.Merge([]*Measurement{stage, nil, classic}) // nil slot: a skipped cell
	if len(set.Measurements) != 2 || set.Measurements[0].Series == nil {
		t.Fatalf("Merge lost measurements or series: %d", len(set.Measurements))
	}
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, stage.SeriesFileName())); err != nil {
		t.Errorf("stage measurement wrote no series file: %v", err)
	}
	if !strings.HasPrefix(stage.SeriesFileName(), "series-") {
		t.Errorf("series file %q does not use the series- prefix", stage.SeriesFileName())
	}
	if _, err := os.Stat(filepath.Join(dir, "series-create-1-1.tsv")); err == nil {
		t.Error("classic measurement wrote a series file")
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Measurements) != 2 {
		t.Fatalf("Load found %d measurements, want 2 (series files must be skipped)", len(loaded.Measurements))
	}
	for _, m := range loaded.Measurements {
		if m.Op != "day" && m.Op != "create" {
			t.Errorf("Load produced unexpected measurement %q", m.Op)
		}
	}
}
