package results

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 0; i < 100; i++ {
		h.Add(time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// All mass in one bucket: every percentile bounded by ~2x the value
	// (bucket resolution) and never above max.
	if p := h.Percentile(0.99); p > h.Max() {
		t.Fatalf("p99 = %v > max %v", p, h.Max())
	}
}

func TestHistogramTail(t *testing.T) {
	var h Histogram
	for i := 0; i < 990; i++ {
		h.Add(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Add(50 * time.Millisecond)
	}
	p50 := h.Percentile(0.50)
	p999 := h.Percentile(0.999)
	if p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want ~100µs bucket", p50)
	}
	if p999 < 10*time.Millisecond {
		t.Fatalf("p999 = %v, want to catch the 50ms tail", p999)
	}
	if !strings.Contains(h.String(), "n=1000") {
		t.Fatalf("string = %q", h.String())
	}
	if bars := h.Bars(40); !strings.Contains(bars, "#") {
		t.Fatalf("bars = %q", bars)
	}
}

// TestHistogramBucketEdges pins the power-of-two bucket layout: each edge
// (1µs, 2µs, 4µs, ...) starts a new bucket, everything below the edge
// stays in the previous one, and bucketUpper reports the true inclusive
// bound — the largest duration bucketOf maps into the bucket.
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond - time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2*time.Microsecond - time.Nanosecond, 1},
		{2 * time.Microsecond, 2},
		{4*time.Microsecond - time.Nanosecond, 2},
		{4 * time.Microsecond, 3},
		{8 * time.Microsecond, 4},
		{1024 * time.Microsecond, 11},
		{time.Second, 20}, // 1e6 µs: 2^19 <= 1e6 < 2^20
		{time.Hour, 32},   // 3.6e9 µs: 2^31 <= 3.6e9 < 2^32
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// bucketUpper(b) must be the largest duration still mapping to b, and
	// one more nanosecond must fall into b+1.
	for b := 0; b < 20; b++ {
		up := bucketUpper(b)
		if got := bucketOf(up); got != b {
			t.Errorf("bucketOf(bucketUpper(%d)=%v) = %d, want %d", b, up, got, b)
		}
		if got := bucketOf(up + time.Nanosecond); got != b+1 {
			t.Errorf("bucketOf(bucketUpper(%d)+1ns) = %d, want %d", b, got, b+1)
		}
	}
}

// Property: percentiles are monotone in p and bounded by max.
func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(us []uint32) bool {
		if len(us) == 0 {
			return true
		}
		var h Histogram
		for _, u := range us {
			h.Add(time.Duration(u%10_000_000) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			if v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
