package results

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

// Histogram is a logarithmically-bucketed latency histogram (power-of-2
// buckets from 1µs up). Per-operation latency distributions complement
// the time-interval logs: averages hide the tail, which is exactly where
// consistency points, journal commits and allocation stalls live.
type Histogram struct {
	buckets [48]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	// bits.Len64 gives floor(log2(us))+1 directly in integer arithmetic;
	// the float Log2 it replaces cost a convert+libm call per observation.
	b := bits.Len64(uint64(us))
	if b >= len(Histogram{}.buckets) {
		b = len(Histogram{}.buckets) - 1
	}
	return b
}

// Add records one latency observation.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += int64(d)
	if h.count == 1 || int64(d) < h.min {
		h.min = int64(d)
	}
	if int64(d) > h.max {
		h.max = int64(d)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min and Max return the extreme observations.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// bucketUpper returns the inclusive upper bound of bucket b: the largest
// duration that bucketOf maps into b. Bucket 0 holds everything below
// 1µs; bucket b>=1 holds [2^(b-1)µs, 2^b µs), so the true inclusive
// bound sits one nanosecond under the next power-of-two edge.
func bucketUpper(b int) time.Duration {
	if b == 0 {
		return time.Microsecond - time.Nanosecond
	}
	return time.Duration(1<<uint(b))*time.Microsecond - time.Nanosecond
}

// Percentile returns an upper bound for the p-quantile (0 < p <= 1) at
// bucket resolution.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for b, n := range h.buckets {
		seen += n
		if seen >= target {
			up := bucketUpper(b)
			if up > time.Duration(h.max) {
				return time.Duration(h.max)
			}
			return up
		}
	}
	return time.Duration(h.max)
}

// String renders count, mean and the common tail percentiles.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.99), h.Max())
}

// Bars renders an ASCII histogram of the populated buckets.
func (h *Histogram) Bars(width int) string {
	if width < 10 {
		width = 10
	}
	var peak int64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		bar := int(float64(n) / float64(peak) * float64(width))
		fmt.Fprintf(&b, "%10v |%-*s %d\n", bucketUpper(i), width, strings.Repeat("#", bar), n)
	}
	return b.String()
}
