package results

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// paperExample rebuilds the measurement of Listings 3.3/3.4: four
// processes, 5000 operations each, 0.1s interval; two processes finish at
// 0.9s, the others at 1.0s. The thesis computes a stonewall average of
// 22,191 ops/s (19,972 ops at 0.9s).
func paperExample() *Measurement {
	mk := func(host string, proc int, done []int64) Trace {
		return Trace{
			Host: host, Op: "StatNocacheFiles", Proc: proc, Done: done,
			Final:      done[len(done)-1],
			FinishedAt: time.Duration(len(done)) * 100 * time.Millisecond,
		}
	}
	// Counts chosen so the 0.9s total is exactly 19,972 like the paper.
	return &Measurement{
		Op: "StatNocacheFiles", Nodes: 2, PPN: 2,
		Interval: 100 * time.Millisecond,
		Traces: []Trace{
			mk("lx64a153", 0, []int64{1, 569, 1212, 1800, 2400, 3000, 3700, 4411, 5000, 5000}),
			mk("lx64a153", 1, []int64{1, 550, 1163, 1750, 2350, 2950, 3650, 4350, 4977, 5000}),
			mk("lx64a140", 2, []int64{1, 547, 1166, 1760, 2360, 2960, 3660, 4351, 4995, 5000}),
			mk("lx64a140", 3, []int64{24, 624, 1266, 1860, 2460, 3060, 3760, 4475, 5000, 5000}),
		},
		Errors: make([]string, 4),
	}
}

func TestStonewallMatchesPaperWorkedExample(t *testing.T) {
	m := paperExample()
	a := m.Averages()
	if a.StonewallAt != 900*time.Millisecond {
		t.Fatalf("stonewall at %v, want 0.9s", a.StonewallAt)
	}
	// 19,972 ops at 0.9s = 22,191 ops/s (§3.3.9 worked example).
	if math.Abs(a.Stonewall-22191.1) > 1 {
		t.Fatalf("stonewall = %.1f, want ~22191", a.Stonewall)
	}
	if a.Runtime != time.Second {
		t.Fatalf("runtime = %v", a.Runtime)
	}
	if math.Abs(a.WallClock-20000) > 1 {
		t.Fatalf("wallclock = %.1f, want 20000", a.WallClock)
	}
}

func TestFixedNAverage(t *testing.T) {
	m := paperExample()
	a := m.Averages(10000)
	got := a.FixedN[10000]
	// Totals: 9,570 at t=0.5s and 11,970 at t=0.6s, so 10,000 ops are
	// first exceeded at t=0.6s: 10,000 / 0.6 = 16,666.7 ops/s.
	if math.Abs(got-16666.7) > 1 {
		t.Fatalf("fixedN(10000) = %.1f, want 16666.7", got)
	}
	if _, ok := m.Averages(1 << 40).FixedN[1<<40]; ok {
		t.Fatal("unreachable fixed-N reported a value")
	}
}

func TestSummaryRows(t *testing.T) {
	m := paperExample()
	rows := m.Summary()
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].TotalDone != 27 {
		t.Fatalf("t=0.1 total = %d, want 27 (1+1+1+24 like Listing 3.4)", rows[0].TotalDone)
	}
	// Total ops never decrease; throughput consistent with deltas.
	for i := 1; i < len(rows); i++ {
		if rows[i].TotalDone < rows[i-1].TotalDone {
			t.Fatalf("total decreased at %d", i)
		}
		wantThr := float64(rows[i].TotalDone-rows[i-1].TotalDone) / 0.1
		if math.Abs(rows[i].Throughput-wantThr) > 0.01 {
			t.Fatalf("throughput[%d] = %f, want %f", i, rows[i].Throughput, wantThr)
		}
	}
	// COV at the final interval is high: two processes stopped.
	if rows[9].COV < 0.5 {
		t.Fatalf("final COV = %f, want > 0.5", rows[9].COV)
	}
}

func TestTraceTSVRoundTrip(t *testing.T) {
	m := paperExample()
	var buf bytes.Buffer
	if err := m.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Hostname\tOperation\tProcessNo\tTimestamp\tOperationsDone") {
		t.Fatalf("missing header: %q", buf.String()[:60])
	}
	got, err := ParseTrace(&buf, m.Nodes, m.PPN, m.Interval)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs() != 4 || got.Op != "StatNocacheFiles" {
		t.Fatalf("parsed %d procs, op %q", got.Procs(), got.Op)
	}
	if got.TotalOps() != m.TotalOps() {
		t.Fatalf("total = %d, want %d", got.TotalOps(), m.TotalOps())
	}
	a1, a2 := m.Averages(), got.Averages()
	if math.Abs(a1.Stonewall-a2.Stonewall) > 1 {
		t.Fatalf("stonewall drifted through TSV: %f vs %f", a1.Stonewall, a2.Stonewall)
	}
}

func TestTraceFileName(t *testing.T) {
	m := paperExample()
	if got := m.TraceFileName(); got != "results-StatNocacheFiles-2-4.tsv" {
		t.Fatalf("file name = %q", got)
	}
}

func TestSetFindAndSeries(t *testing.T) {
	s := NewSet("test", "nfs", 100*time.Millisecond)
	s.Add(paperExample())
	m2 := paperExample()
	m2.Nodes, m2.PPN = 4, 2
	s.Add(m2)
	if s.Find("StatNocacheFiles", 2, 2) == nil {
		t.Fatal("find failed")
	}
	if s.Find("StatNocacheFiles", 9, 9) != nil {
		t.Fatal("found nonexistent measurement")
	}
	pts := s.ScaleSeries("StatNocacheFiles")
	if len(pts) != 2 || pts[0].Nodes != 2 || pts[1].Nodes != 4 {
		t.Fatalf("series = %+v", pts)
	}
	if ops := s.Ops(); len(ops) != 1 || ops[0] != "StatNocacheFiles" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestWriteSummaryFormat(t *testing.T) {
	m := paperExample()
	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("summary lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "StatNocacheFiles\t2\t4\t0.1\t27\t") {
		t.Fatalf("first row = %q", lines[0])
	}
}

func TestFailedMeasurement(t *testing.T) {
	m := paperExample()
	if m.Failed() {
		t.Fatal("clean measurement reported failed")
	}
	m.Errors[2] = "dobench: boom"
	if !m.Failed() {
		t.Fatal("error not reported")
	}
}

// buildMeasurement constructs a measurement from random per-tick
// increments, scaled by factor.
func buildMeasurement(raw []uint16, procs int, factor int64) *Measurement {
	n := procs%4 + 1
	ticks := len(raw)/n + 1
	m := &Measurement{Op: "X", Nodes: 1, PPN: n, Interval: 100 * time.Millisecond}
	idx := 0
	for p := 0; p < n; p++ {
		var done []int64
		var cum int64
		for i := 0; i < ticks; i++ {
			if idx < len(raw) {
				cum += int64(raw[idx]%100) * factor
				idx++
			}
			done = append(done, cum)
		}
		m.Traces = append(m.Traces, Trace{
			Host: "h", Op: "X", Proc: p, Done: done, Final: cum,
			FinishedAt: time.Duration(ticks) * 100 * time.Millisecond,
		})
	}
	return m
}

// Property: the averages are linear — doubling every count doubles the
// stonewall and wall-clock throughput; and both are always non-negative
// with StonewallAt on the sampling grid and within the runtime.
func TestAveragesProperties(t *testing.T) {
	f := func(raw []uint16, procs uint8) bool {
		if len(raw) < 2 {
			return true
		}
		m1 := buildMeasurement(raw, int(procs), 1)
		m2 := buildMeasurement(raw, int(procs), 2)
		if m1.TotalOps() == 0 {
			return true
		}
		a1, a2 := m1.Averages(), m2.Averages()
		if a1.Stonewall < 0 || a1.WallClock < 0 {
			return false
		}
		if math.Abs(a2.Stonewall-2*a1.Stonewall) > 0.01 {
			return false
		}
		if math.Abs(a2.WallClock-2*a1.WallClock) > 0.01 {
			return false
		}
		if a1.StonewallAt%m1.Interval != 0 {
			return false
		}
		return a1.StonewallAt <= a1.Runtime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
