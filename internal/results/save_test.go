package results

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewSet("roundtrip", "nfs", 100*time.Millisecond)
	s.Environment["nodes"] = "4"
	s.Add(paperExample())
	m2 := paperExample()
	m2.Op = "MakeFiles"
	m2.Nodes, m2.PPN = 4, 1
	for i := range m2.Traces {
		m2.Traces[i].Op = "MakeFiles"
	}
	s.Add(m2)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"performance.tsv", "environment.txt",
		"results-StatNocacheFiles-2-4.tsv", "summary-StatNocacheFiles-2-4.tsv",
		"results-MakeFiles-4-4.tsv",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s: %v", want, err)
		}
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "roundtrip" || got.FS != "nfs" || got.Interval != 100*time.Millisecond {
		t.Fatalf("set meta = %q %q %v", got.Label, got.FS, got.Interval)
	}
	if got.Environment["nodes"] != "4" {
		t.Fatalf("environment lost: %v", got.Environment)
	}
	if len(got.Measurements) != 2 {
		t.Fatalf("measurements = %d", len(got.Measurements))
	}
	orig := s.Find("StatNocacheFiles", 2, 2)
	loaded := got.Find("StatNocacheFiles", 2, 2)
	if loaded == nil {
		t.Fatal("loaded set misses StatNocacheFiles")
	}
	if loaded.TotalOps() != orig.TotalOps() {
		t.Fatalf("ops = %d, want %d", loaded.TotalOps(), orig.TotalOps())
	}
	a, b := orig.Averages(), loaded.Averages()
	if a.Stonewall != b.Stonewall {
		t.Fatalf("stonewall drifted: %f vs %f", a.Stonewall, b.Stonewall)
	}
}
